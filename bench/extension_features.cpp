// Extension benches (beyond the paper's tables):
//  * DMA-driven reconfiguration vs the CPU fetch loop vs the ICAP bound;
//  * readback scrubbing cost per region;
//  * the XL pattern matcher: image sizes only the 64-bit region can buffer;
//  * dual dynamic areas: task alternation without swap reconfigurations.
#include <cstdio>

#include "apps/drivers.hpp"
#include "apps/sw_kernels.hpp"
#include "bench/common.hpp"
#include "report/table.hpp"
#include "rtr/platform_dual.hpp"
#include "rtr/manager.hpp"
#include "rtr/readback.hpp"

using namespace rtr;

int main() {
  // --- reconfiguration paths ---------------------------------------------
  {
    report::Table t{"Extension: reconfiguration paths (64-bit system, fade "
                    "module, 390 KB complete configuration)",
                    {"Path", "Time (ms)", "CPU busy?"}};
    Platform64 a;
    const auto cpu_load = a.load_module(hw::kFade);
    Platform64 b;
    const auto dma_load = b.load_module_dma(hw::kFade);
    RTR_CHECK(cpu_load.ok && dma_load.ok, "load failed");
    t.row({"CPU fetch + store loop", report::fmt_ms(cpu_load.duration()),
           "yes (whole load)"});
    t.row({"scatter-gather DMA -> HWICAP", report::fmt_ms(dma_load.duration()),
           "no (sleeps until interrupt)"});
    t.print();
  }

  // --- readback scrubbing --------------------------------------------------
  {
    report::Table t{"Extension: readback verification (scrub) cost",
                    {"System", "Frames", "Time (ms)", "Verdict"}};
    Platform32 p32;
    RTR_CHECK(p32.load_module(hw::kJenkinsHash).ok, "load failed");
    const auto s32 =
        readback_verify(p32.kernel(), Platform32::kIcapRange.base, p32.region());
    t.row({"32-bit", report::fmt_int(s32.frames), report::fmt_ms(s32.duration),
           s32.ok ? "intact" : "CORRUPT"});
    Platform64 p64;
    RTR_CHECK(p64.load_module(hw::kJenkinsHash).ok, "load failed");
    const auto s64 =
        readback_verify(p64.kernel(), Platform64::kIcapRange.base, p64.region());
    t.row({"64-bit", report::fmt_int(s64.frames), report::fmt_ms(s64.duration),
           s64.ok ? "intact" : "CORRUPT"});
    t.print();
  }

  // --- XL pattern matcher ---------------------------------------------------
  {
    report::Table t{"Extension: XL pattern matcher (22-BRAM buffer, 64-bit "
                    "system; the base module caps at 110592 pixels)",
                    {"Image", "Pixels", "Base module", "XL SW (ms)",
                     "XL HW (ms)", "Speedup"}};
    for (const auto& [w, h] : {std::pair{256, 256}, {384, 320}, {512, 512}}) {
      const auto wl = bench::make_pattern_workload(w, h);
      const auto img_bytes = apps::to_bytes(wl.img);
      const auto pat_bytes = bench::pattern_bytes(wl.pat);
      const bool base_fits =
          static_cast<std::int64_t>(w) * h <= hw::bram_bits(6);

      Platform64 sw_p;
      apps::store_bytes(sw_p.cpu().plb(), bench::kA64, img_bytes);
      apps::store_bytes(sw_p.cpu().plb(), bench::kB64, pat_bytes);
      const auto t0 = sw_p.kernel().now();
      const auto sw_res =
          apps::sw_pattern_match(sw_p.kernel(), bench::kA64, w, h, bench::kB64);
      const auto sw_time = sw_p.kernel().now() - t0;

      Platform64 hw_p;
      bench::must_load(hw_p, hw::kPatternMatcherXl);
      apps::store_bytes(hw_p.cpu().plb(), bench::kA64, img_bytes);
      apps::store_bytes(hw_p.cpu().plb(), bench::kB64, pat_bytes);
      const auto t1 = hw_p.kernel().now();
      const auto hw_res = apps::hw_pattern_match_pio(
          hw_p.kernel(), Platform64::dock_data(), bench::kA64, w, h, bench::kB64);
      const auto hw_time = hw_p.kernel().now() - t1;
      RTR_CHECK(hw_res.best_count == sw_res.best_count, "HW/SW disagree");

      char size[32];
      std::snprintf(size, sizeof size, "%dx%d", w, h);
      t.row({size, report::fmt_int(static_cast<std::int64_t>(w) * h),
             base_fits ? "fits" : "capacity error",
             report::fmt_ms(sw_time), report::fmt_ms(hw_time),
             report::fmt_x(static_cast<double>(sw_time.ps()) /
                           static_cast<double>(hw_time.ps()))});
    }
    t.print();
  }

  // --- dual dynamic areas ------------------------------------------------------
  {
    report::Table t{"Extension: two dynamic areas vs swapping one (alternate "
                    "hash and brightness 4x, 64-bit system)",
                    {"Approach", "Reconfigurations", "Reconfig time (ms)",
                     "Task time (ms)"}};
    const auto key = bench::random_bytes(2048);
    const auto img = bench::random_gray(128, 64);
    const int n = static_cast<int>(img.size());

    // Single region: swap per alternation.
    {
      Platform64 p;
      apps::store_bytes(p.cpu().plb(), bench::kA64, key);
      apps::store_bytes(p.cpu().plb(), bench::kB64, img.pixels);
      sim::SimTime reconfig, task;
      int loads = 0;
      for (int i = 0; i < 4; ++i) {
        auto s = p.load_module(hw::kJenkinsHash);
        RTR_CHECK(s.ok, "load failed");
        reconfig += s.duration();
        ++loads;
        auto t0 = p.kernel().now();
        apps::hw_jenkins_pio(p.kernel(), Platform64::dock_data(), bench::kA64,
                             2048);
        task += p.kernel().now() - t0;
        s = p.load_module(hw::kBrightness);
        RTR_CHECK(s.ok, "load failed");
        reconfig += s.duration();
        ++loads;
        t0 = p.kernel().now();
        apps::hw_brightness_pio(p.kernel(), Platform64::dock_data(),
                                bench::kB64, bench::kOut64, n, 25);
        task += p.kernel().now() - t0;
      }
      t.row({"one region (swap)", report::fmt_int(loads),
             report::fmt_ms(reconfig), report::fmt_ms(task)});
    }
    // Dual regions: both resident.
    {
      Platform64Dual p;
      apps::store_bytes(p.cpu().plb(), bench::kA64, key);
      apps::store_bytes(p.cpu().plb(), bench::kB64, img.pixels);
      sim::SimTime reconfig, task;
      auto s = p.load_module(0, hw::kJenkinsHash);
      RTR_CHECK(s.ok, "load failed");
      reconfig += s.duration();
      s = p.load_module(1, hw::kBrightness);
      RTR_CHECK(s.ok, "load failed");
      reconfig += s.duration();
      for (int i = 0; i < 4; ++i) {
        auto t0 = p.kernel().now();
        apps::hw_jenkins_pio(p.kernel(), Platform64Dual::dock_data(0),
                             bench::kA64, 2048);
        apps::hw_brightness_pio(p.kernel(), Platform64Dual::dock_data(1),
                                bench::kB64, bench::kOut64, n, 25);
        task += p.kernel().now() - t0;
      }
      t.row({"two regions (resident)", "2", report::fmt_ms(reconfig),
             report::fmt_ms(task)});
    }
    t.print();
    std::printf("\nTwo separate dynamic areas (the alternative section 4.1 "
                "suggests) trade fabric area for swap-free task "
                "alternation.\n");
  }
  // --- safe differential reconfiguration --------------------------------------
  {
    report::Table t{"Extension: ModuleManager with safe differential "
                    "reconfiguration (alternate jenkins/brightness, 32-bit "
                    "system)",
                    {"Swap", "Path", "Stream KB", "Time (ms)"}};
    Platform32 p;
    ModuleManager<Platform32> mgr{p};
    const hw::BehaviorId seq[] = {hw::kJenkinsHash, hw::kBrightness,
                                  hw::kJenkinsHash, hw::kBrightness,
                                  hw::kJenkinsHash};
    for (std::size_t i = 0; i < std::size(seq); ++i) {
      const auto s = mgr.ensure(seq[i], 32);
      RTR_CHECK(s.ok, "ensure failed");
      t.row({report::fmt_int(static_cast<std::int64_t>(i)),
             s.already_resident
                 ? "resident"
                 : (s.used_differential ? "differential" : "complete"),
             report::fmt_int(s.stream_words * 4 / 1024),
             report::fmt_ms(s.time)});
    }
    t.print();
    std::printf("\nThe runtime's payload-hash gate makes differential "
                "configurations safe: a stale assumption cannot bind a "
                "broken circuit, it just falls back to the complete "
                "configuration (section 2.2's objection, resolved at run "
                "time).\n");
  }

  // --- overlapping data preparation with DMA --------------------------------
  {
    report::Table t{"Extension: serialized vs overlapped data preparation "
                    "(blend, 256x128, 64-bit DMA)",
                    {"D-cache", "Serialized (ms)", "Overlapped (ms)",
                     "Gain"}};
    const auto a = bench::random_gray(256, 128, 21);
    const auto b = bench::random_gray(256, 128, 22);
    const int n = 256 * 128;
    for (bool cached : {false, true}) {
      PlatformOptions opts;
      opts.enable_dcache = cached;
      sim::SimTime serial, overlap;
      {
        Platform64 p{opts};
        bench::must_load(p, hw::kBlendAdd);
        apps::store_bytes(p.cpu().plb(), bench::kA64, a.pixels);
        apps::store_bytes(p.cpu().plb(), bench::kB64, b.pixels);
        serial = apps::hw_blend_dma(p, bench::kA64, bench::kB64,
                                    bench::kStage64, bench::kOut64, n)
                     .total;
      }
      {
        Platform64 p{opts};
        bench::must_load(p, hw::kBlendAdd);
        apps::store_bytes(p.cpu().plb(), bench::kA64, a.pixels);
        apps::store_bytes(p.cpu().plb(), bench::kB64, b.pixels);
        overlap = apps::hw_blend_dma_overlapped(p, bench::kA64, bench::kB64,
                                                bench::kStage64, bench::kOut64,
                                                n)
                      .total;
        RTR_CHECK(apps::fetch_bytes(p.cpu().plb(), bench::kOut64,
                                    a.pixels.size()) ==
                      apps::blend_add(a, b).pixels,
                  "overlapped result wrong");
      }
      t.row({cached ? "on" : "off", report::fmt_ms(serial),
             report::fmt_ms(overlap),
             report::fmt_x(static_cast<double>(serial.ps()) /
                           static_cast<double>(overlap.ps()))});
    }
    t.print();
    std::printf("\nOverlap buys almost nothing here: the DMA moves a block "
                "roughly 10x faster than the CPU can prepare the next one, "
                "so data preparation itself is the bottleneck -- the "
                "quantitative form of the paper's conclusion that the DMA "
                "mode's data-organisation constraints are what limit the "
                "two-source tasks.\n");
  }
  return 0;
}
