// Table 12: image-processing tasks with 64-bit DMA (section 4.2).
// Brightness uses the 64-bit transfers "without additional work, since only
// one image is involved" -> clear speedup increase; blend and fade need the
// CPU to combine the two source images first ("data preparation", directly
// attributable to the DMA transfer-mode constraints) -> significantly
// smaller increase.
#include <cstdio>

#include "apps/drivers.hpp"
#include "apps/sw_kernels.hpp"
#include "bench/common.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  const int w = 256, h = 128;
  const int n = w * h;
  const auto a = bench::random_gray(w, h, 11);
  const auto b = bench::random_gray(w, h, 12);

  report::Table t{
      "Table 12: Image tasks with 64-bit DMA (8-bit grayscale, 256x128, "
      "64-bit system)",
      {"Task", "SW (ms)", "HW total (ms)", "data prep (ms)", "Speedup",
       "Speedup 32-bit PIO"}};

  struct Ref {
    double sw32_ms, hw32_ms;
  };
  auto run = [&](const char* name, hw::BehaviorId id, auto sw_fn, auto hw_dma,
                 auto sw32_fn, auto hw32_fn,
                 const std::vector<std::uint8_t>& want) {
    // 64-bit software baseline.
    Platform64 sw_p;
    apps::store_bytes(sw_p.cpu().plb(), bench::kA64, a.pixels);
    apps::store_bytes(sw_p.cpu().plb(), bench::kB64, b.pixels);
    const auto t0 = sw_p.kernel().now();
    sw_fn(sw_p);
    const auto sw_time = sw_p.kernel().now() - t0;
    RTR_CHECK(apps::fetch_bytes(sw_p.cpu().plb(), bench::kOut64, want.size()) ==
                  want,
              "SW result wrong");

    // 64-bit DMA hardware version.
    Platform64 hw_p;
    bench::must_load(hw_p, id);
    apps::store_bytes(hw_p.cpu().plb(), bench::kA64, a.pixels);
    apps::store_bytes(hw_p.cpu().plb(), bench::kB64, b.pixels);
    const apps::DmaTaskStats stats = hw_dma(hw_p);
    RTR_CHECK(apps::fetch_bytes(hw_p.cpu().plb(), bench::kOut64, want.size()) ==
                  want,
              "HW result wrong");
    RTR_CHECK(!hw_p.dock().overflowed(), "FIFO overflow");

    // 32-bit system reference speedup (table 5 column).
    Platform32 r_sw;
    apps::store_bytes(r_sw.cpu().plb(), bench::kA32, a.pixels);
    apps::store_bytes(r_sw.cpu().plb(), bench::kB32, b.pixels);
    const auto t2 = r_sw.kernel().now();
    sw32_fn(r_sw);
    const auto sw32 = r_sw.kernel().now() - t2;
    Platform32 r_hw;
    bench::must_load(r_hw, id);
    apps::store_bytes(r_hw.cpu().plb(), bench::kA32, a.pixels);
    apps::store_bytes(r_hw.cpu().plb(), bench::kB32, b.pixels);
    const auto t3 = r_hw.kernel().now();
    hw32_fn(r_hw);
    const auto hw32 = r_hw.kernel().now() - t3;

    t.row({name, report::fmt_ms(sw_time), report::fmt_ms(stats.total),
           report::fmt_ms(stats.data_preparation),
           report::fmt_x(static_cast<double>(sw_time.ps()) /
                         static_cast<double>(stats.total.ps())),
           report::fmt_x(static_cast<double>(sw32.ps()) /
                         static_cast<double>(hw32.ps()))});
  };

  run(
      "brightness adjustment (+60)", hw::kBrightness,
      [&](Platform64& p) {
        apps::sw_brightness(p.kernel(), bench::kA64, bench::kOut64, n, 60);
      },
      [&](Platform64& p) {
        return apps::hw_brightness_dma(p, bench::kA64, bench::kOut64, n, 60);
      },
      [&](Platform32& p) {
        apps::sw_brightness(p.kernel(), bench::kA32, bench::kOut32, n, 60);
      },
      [&](Platform32& p) {
        apps::hw_brightness_pio(p.kernel(), Platform32::dock_data(),
                                bench::kA32, bench::kOut32, n, 60);
      },
      apps::brightness(a, 60).pixels);

  run(
      "additive blending", hw::kBlendAdd,
      [&](Platform64& p) {
        apps::sw_blend(p.kernel(), bench::kA64, bench::kB64, bench::kOut64, n);
      },
      [&](Platform64& p) {
        return apps::hw_blend_dma(p, bench::kA64, bench::kB64, bench::kStage64,
                                  bench::kOut64, n);
      },
      [&](Platform32& p) {
        apps::sw_blend(p.kernel(), bench::kA32, bench::kB32, bench::kOut32, n);
      },
      [&](Platform32& p) {
        apps::hw_blend_pio(p.kernel(), Platform32::dock_data(), bench::kA32,
                           bench::kB32, bench::kOut32, n);
      },
      apps::blend_add(a, b).pixels);

  run(
      "fade effect (f=160)", hw::kFade,
      [&](Platform64& p) {
        apps::sw_fade(p.kernel(), bench::kA64, bench::kB64, bench::kOut64, n,
                      160);
      },
      [&](Platform64& p) {
        return apps::hw_fade_dma(p, bench::kA64, bench::kB64, bench::kStage64,
                                 bench::kOut64, n, 160);
      },
      [&](Platform32& p) {
        apps::sw_fade(p.kernel(), bench::kA32, bench::kB32, bench::kOut32, n,
                      160);
      },
      [&](Platform32& p) {
        apps::hw_fade_pio(p.kernel(), Platform32::dock_data(), bench::kA32,
                          bench::kB32, bench::kOut32, n, 160);
      },
      apps::fade(a, b, 160).pixels);

  t.print();
  std::printf("\nBrightness gains most from DMA (single source, no data "
              "preparation). Blend/fade pay the CPU-side combining of the "
              "two sources into DMA-able blocks.\n");
  return 0;
}
