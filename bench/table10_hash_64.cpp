// Table 10: Jenkins hash on the 64-bit system (section 4.2): the unmodified
// 32-bit implementation with CPU-controlled transfers; "the hash value
// calculation task ... shows only a slightly better speedup for the hardware
// implementation".
#include <cstdio>

#include "apps/drivers.hpp"
#include "apps/sw_kernels.hpp"
#include "bench/common.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  report::Table t{
      "Table 10: Hash function (Jenkins lookup2, 64-bit system, "
      "CPU-controlled transfers)",
      {"Key bytes", "SW (us)", "HW/SW (us)", "Speedup", "Speedup on 32-bit"}};

  Platform64 sw_p;
  Platform64 hw_p;
  bench::must_load(hw_p, hw::kJenkinsHash);
  Platform32 ref_sw;
  Platform32 ref_hw;
  bench::must_load(ref_hw, hw::kJenkinsHash);

  for (std::uint32_t len : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    const auto key = bench::random_bytes(len, 100 + len);
    apps::store_bytes(sw_p.cpu().plb(), bench::kA64, key);
    apps::store_bytes(hw_p.cpu().plb(), bench::kA64, key);
    apps::store_bytes(ref_sw.cpu().plb(), bench::kA32, key);
    apps::store_bytes(ref_hw.cpu().plb(), bench::kA32, key);

    const auto t0 = sw_p.kernel().now();
    const auto sw_hash = apps::sw_jenkins(sw_p.kernel(), bench::kA64, len);
    const auto sw64 = sw_p.kernel().now() - t0;

    const auto t1 = hw_p.kernel().now();
    const auto hw_hash = apps::hw_jenkins_pio(
        hw_p.kernel(), Platform64::dock_data(), bench::kA64, len);
    const auto hw64 = hw_p.kernel().now() - t1;
    RTR_CHECK(sw_hash == hw_hash, "SW and HW hashes disagree");

    const auto t2 = ref_sw.kernel().now();
    apps::sw_jenkins(ref_sw.kernel(), bench::kA32, len);
    const auto sw32 = ref_sw.kernel().now() - t2;
    const auto t3 = ref_hw.kernel().now();
    apps::hw_jenkins_pio(ref_hw.kernel(), Platform32::dock_data(), bench::kA32,
                         len);
    const auto hw32 = ref_hw.kernel().now() - t3;

    t.row({report::fmt_int(len), report::fmt_us(sw64), report::fmt_us(hw64),
           report::fmt_x(static_cast<double>(sw64.ps()) /
                         static_cast<double>(hw64.ps())),
           report::fmt_x(static_cast<double>(sw32.ps()) /
                         static_cast<double>(hw32.ps()))});
  }
  t.print();
  return 0;
}
