// Ablation: data-cache effect on the software baselines.
//
// The modelled systems run with the D-cache disabled (the configuration
// under which the paper's measured trends -- "results follow the transfer
// times" -- hold). This ablation quantifies what enabling the 16 KB
// write-back cache would change, i.e. how sensitive the paper's speedups
// are to the memory hierarchy configuration.
#include <cstdio>

#include "apps/drivers.hpp"
#include "apps/sw_kernels.hpp"
#include "bench/common.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  const int w = 256, h = 128;
  const int n = w * h;
  const auto a = bench::random_gray(w, h, 11);
  const auto b = bench::random_gray(w, h, 12);

  report::Table t{
      "Ablation: software baselines with D-cache off vs on (both systems, "
      "brightness + blend, 256x128)",
      {"System", "Task", "SW uncached (ms)", "SW cached (ms)", "Cache gain"}};

  auto run32 = [&](const char* task, auto fn) {
    sim::SimTime times[2];
    for (int cached = 0; cached < 2; ++cached) {
      PlatformOptions opts;
      opts.enable_dcache = cached == 1;
      Platform32 p{opts};
      apps::store_bytes(p.cpu().plb(), bench::kA32, a.pixels);
      apps::store_bytes(p.cpu().plb(), bench::kB32, b.pixels);
      const auto t0 = p.kernel().now();
      fn(p);
      p.cpu().flush_dcache();  // results must reach memory either way
      times[cached] = p.kernel().now() - t0;
    }
    t.row({"32-bit", task, report::fmt_ms(times[0]), report::fmt_ms(times[1]),
           report::fmt_x(static_cast<double>(times[0].ps()) /
                         static_cast<double>(times[1].ps()))});
  };
  auto run64 = [&](const char* task, auto fn) {
    sim::SimTime times[2];
    for (int cached = 0; cached < 2; ++cached) {
      PlatformOptions opts;
      opts.enable_dcache = cached == 1;
      Platform64 p{opts};
      apps::store_bytes(p.cpu().plb(), bench::kA64, a.pixels);
      apps::store_bytes(p.cpu().plb(), bench::kB64, b.pixels);
      const auto t0 = p.kernel().now();
      fn(p);
      p.cpu().flush_dcache();
      times[cached] = p.kernel().now() - t0;
    }
    t.row({"64-bit", task, report::fmt_ms(times[0]), report::fmt_ms(times[1]),
           report::fmt_x(static_cast<double>(times[0].ps()) /
                         static_cast<double>(times[1].ps()))});
  };

  run32("brightness", [&](Platform32& p) {
    apps::sw_brightness(p.kernel(), bench::kA32, bench::kOut32, n, 60);
  });
  run32("blend", [&](Platform32& p) {
    apps::sw_blend(p.kernel(), bench::kA32, bench::kB32, bench::kOut32, n);
  });
  run64("brightness", [&](Platform64& p) {
    apps::sw_brightness(p.kernel(), bench::kA64, bench::kOut64, n, 60);
  });
  run64("blend", [&](Platform64& p) {
    apps::sw_blend(p.kernel(), bench::kA64, bench::kB64, bench::kOut64, n);
  });

  t.print();
  std::printf("\nWith caches on, the software baselines narrow the gap to the "
              "PIO hardware versions substantially -- the hardware/software "
              "trade-off of the paper is specific to its memory "
              "configuration.\n");
  return 0;
}
