// Table 8: 64-bit DMA-controlled transfers between dynamic region and
// external memory (section 4.2). "Each transfer involves a 64-bit value,
// using the data path to the fullest. The interleaved write/read operations
// are block-interleaved ... the current output FIFO stores up to 2047
// 64-bit values."
#include <cstdio>

#include "apps/drivers.hpp"
#include "bench/common.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  Platform64 p;
  const auto data = bench::random_bytes(8 * 16384);
  apps::store_bytes(p.cpu().plb(), bench::kA64, data);

  report::Table t{
      "Table 8: 64-bit DMA-controlled transfers (64-bit system, output FIFO "
      "depth 2047)",
      {"Operation", "Transfers (64-bit)", "Total (us)",
       "Avg per transfer (us)"}};

  for (int n : {2047, 16384}) {
    // Write: memory -> dynamic region (sink module, no FIFO involvement).
    bench::must_load(p, hw::kSink);
    const auto w = apps::dma_write_seq(p, bench::kA64, n);
    t.row({"write (mem -> dyn region)", report::fmt_int(n), report::fmt_us(w),
           report::fmt_us(sim::SimTime{w.ps() / n})});

    // Read: dynamic region -> memory. The FIFO is refilled block by block
    // (capped by its depth); only the drain is the measured read.
    bench::must_load(p, hw::kLoopback);
    sim::SimTime read_total = sim::SimTime::zero();
    int done = 0;
    while (done < n) {
      const int chunk = std::min(p.dock().fifo_depth(), n - done);
      apps::dma_write_seq(p, bench::kA64 + static_cast<bus::Addr>(done) * 8,
                          chunk);  // refill (not measured)
      read_total += apps::dma_read_seq(
          p, bench::kOut64 + static_cast<bus::Addr>(done) * 8, chunk);
      done += chunk;
    }
    t.row({"read (dyn region -> mem)", report::fmt_int(n),
           report::fmt_us(read_total),
           report::fmt_us(sim::SimTime{read_total.ps() / n})});

    // Interleaved: stream until the FIFO fills, stop, drain by DMA, repeat.
    const auto i = apps::dma_interleaved_seq(p, bench::kA64, bench::kOut64, n);
    t.row({"interleaved write/read (block)", report::fmt_int(n),
           report::fmt_us(i), report::fmt_us(sim::SimTime{i.ps() / n})});
  }
  t.print();
  std::printf("\nCompare per-transfer times with table 7 (CPU-controlled "
              "32-bit): DMA moves 8 bytes per transfer in pipelined bursts "
              "while the CPU is free.\n");
  return 0;
}
