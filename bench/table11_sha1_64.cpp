// Table 11: SHA-1 (RFC 3174), 64-bit system only (section 4.2). "Our
// implementation does not fit into the dynamic area of the 32-bit system,
// so no comparison can be done. ... The software implementation (taken from
// the RFC document) has a large overhead for smaller data sets. The
// overhead's relative importance decreases for larger data sets."
#include <cstdio>

#include "apps/drivers.hpp"
#include "apps/sw_kernels.hpp"
#include "bench/common.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  // The fit check is the 32-bit half of the experiment.
  {
    Platform32 p32;
    const ReconfigStats s = p32.load_module(hw::kSha1);
    RTR_CHECK(!s.ok, "SHA-1 must not fit the 32-bit dynamic area");
    std::printf("32-bit system: %s\n", s.error.c_str());
  }

  report::Table t{
      "Table 11: SHA-1 (64-bit system, 32-bit CPU-controlled transfers)",
      {"Message bytes", "SW (us)", "HW/SW (us)", "Speedup"}};

  Platform64 sw_p;
  Platform64 hw_p;
  bench::must_load(hw_p, hw::kSha1);

  for (std::uint32_t len : {64u, 256u, 1024u, 8192u, 65536u}) {
    const auto msg = bench::random_bytes(len, 200 + len);
    apps::store_bytes(sw_p.cpu().plb(), bench::kA64, msg);
    apps::store_bytes(hw_p.cpu().plb(), bench::kA64, msg);

    const auto t0 = sw_p.kernel().now();
    const auto sw_digest =
        apps::sw_sha1(sw_p.kernel(), bench::kA64, len, bench::kScratch64);
    const auto sw_time = sw_p.kernel().now() - t0;

    const auto t1 = hw_p.kernel().now();
    const auto hw_digest = apps::hw_sha1_pio(
        hw_p.kernel(), Platform64::dock_data(), bench::kA64, len);
    const auto hw_time = hw_p.kernel().now() - t1;

    RTR_CHECK(sw_digest == hw_digest, "SW and HW digests disagree");
    RTR_CHECK(sw_digest == apps::sha1(msg), "digest wrong");

    t.row({report::fmt_int(len), report::fmt_us(sw_time),
           report::fmt_us(hw_time),
           report::fmt_x(static_cast<double>(sw_time.ps()) /
                         static_cast<double>(hw_time.ps()))});
  }
  t.print();
  std::printf("\nConsiderable hardware gain; the software overhead (context "
              "setup, W[80] schedule in memory, padding) weighs most on "
              "small messages.\n");
  return 0;
}
