// Ablation: output-FIFO depth sensitivity of the block-interleaved DMA
// transfers (table 8's design choice: 2047 x 64-bit).
#include <cstdio>

#include "apps/drivers.hpp"
#include "apps/memio.hpp"
#include "bench/common.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  const int n = 16384;  // 64-bit items
  const auto data = bench::random_bytes(static_cast<std::size_t>(n) * 8);

  report::Table t{
      "Ablation: block-interleaved DMA vs output FIFO depth (16384 64-bit "
      "transfers)",
      {"FIFO depth", "Blocks", "Total (us)", "Avg per transfer (us)"}};

  for (int depth : {64, 256, 1024, 2047, 4096, 8192}) {
    PlatformOptions opts;
    opts.fifo_depth = depth;
    Platform64 p{opts};
    bench::must_load(p, hw::kLoopback);
    apps::store_bytes(p.cpu().plb(), bench::kA64, data);

    const auto total = apps::dma_interleaved_seq(p, bench::kA64, bench::kOut64, n);
    RTR_CHECK(!p.dock().overflowed(), "overflow");
    RTR_CHECK(apps::fetch_bytes(p.cpu().plb(), bench::kOut64, data.size()) ==
                  data,
              "data corrupted");
    t.row({report::fmt_int(depth), report::fmt_int((n + depth - 1) / depth),
           report::fmt_us(total),
           report::fmt_us(sim::SimTime{total.ps() / n})});
  }
  t.print();
  std::printf("\nDeeper FIFOs amortise the per-block descriptor setup and "
              "interrupt cost; beyond ~2k entries the return is small, which "
              "is why the paper's 2047-deep FIFO (8 BRAMs) is a reasonable "
              "sizing.\n");
  return 0;
}
