// Host-performance microbenchmarks (google-benchmark): how fast the
// simulator itself executes its primitives. These guard against
// performance regressions in the simulation substrate -- the table benches
// above measure *simulated* time, this binary measures *host* time.
#include <benchmark/benchmark.h>

#include "apps/memio.hpp"
#include "bench/common.hpp"
#include "bitstream/partial_config.hpp"
#include "rtr/platform.hpp"
#include "sim/event_queue.hpp"

using namespace rtr;

static void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(sim::SimTime::from_ns(i), [&](sim::SimTime) { ++sink; });
    }
    q.drain();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void BM_OpbTransaction(benchmark::State& state) {
  Platform32 p;
  sim::SimTime t;
  for (auto _ : state) {
    t = p.cpu().plb().write(Platform32::kSramRange.base, 42, 4, t);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpbTransaction);

static void BM_CpuUncachedLoad(benchmark::State& state) {
  Platform32 p;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.cpu().load32(Platform32::kSramRange.base));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CpuUncachedLoad);

static void BM_IcapFeedWord(benchmark::State& state) {
  Platform32 p;
  const auto comp = hw::component_for(hw::kBrightness, 32);
  const auto linked = p.linker().link_single(comp);
  const auto words = bitstream::serialize(*linked.config);
  std::size_t i = 0;
  for (auto _ : state) {
    p.icap_ctl().feed_word(words[i % words.size()]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IcapFeedWord);

static void BM_BitLinkerAssembly(benchmark::State& state) {
  Platform32 p;
  const auto comp = hw::component_for(hw::kBrightness, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.linker().link_single(comp));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitLinkerAssembly);

static void BM_DmaBlock(benchmark::State& state) {
  Platform64 p;
  bench::must_load(p, hw::kSink);
  sim::SimTime t;
  const dma::DmaDescriptor d{bench::kA64, Platform64::dock_stream(), 2048,
                             true, false};
  for (auto _ : state) {
    t = p.dma().run_one(d, t);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_DmaBlock);

BENCHMARK_MAIN();
