// Host-performance microbenchmarks (google-benchmark): how fast the
// simulator itself executes its primitives. These guard against
// performance regressions in the simulation substrate -- the table benches
// above measure *simulated* time, this binary measures *host* time.
#include <benchmark/benchmark.h>

#include "apps/memio.hpp"
#include "bench/common.hpp"
#include "bitstream/partial_config.hpp"
#include "fabric/config_memory.hpp"
#include "mem/sparse_memory.hpp"
#include "rtr/manager.hpp"
#include "rtr/platform.hpp"
#include "serve/fleet/fleet.hpp"
#include "serve/server.hpp"
#include "sim/event_queue.hpp"

using namespace rtr;

static void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(sim::SimTime::from_ns(i), [&](sim::SimTime) { ++sink; });
    }
    q.drain();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

// 1000 events at one timestamp: the DMA-completion / interrupt-burst shape.
// Drain dispatches same-time events as a batch instead of a heap pop each.
static void BM_EventQueueSameTimeBatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(sim::SimTime::from_us(1), [&](sim::SimTime) { ++sink; });
    }
    q.drain();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueSameTimeBatch);

// 64 KB round-trip through SparseMemory, deliberately page-straddling.
static void BM_SparseMemoryBlockCopy(benchmark::State& state) {
  mem::SparseMemory m{1u << 20};
  std::vector<std::uint8_t> in(64 * 1024, 0x5A);
  std::vector<std::uint8_t> out(in.size());
  for (auto _ : state) {
    m.write_block(1000, in);
    m.read_block(1000, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * in.size()));
}
BENCHMARK(BM_SparseMemoryBlockCopy);

// diff_frames between two device states differing in a handful of frames:
// the ModuleManager's differential-reconfiguration decision.
static void BM_ConfigMemoryIncrementalDiff(benchmark::State& state) {
  fabric::ConfigMemory a{fabric::Device::xc2vp30()};
  fabric::ConfigMemory b{fabric::Device::xc2vp30()};
  const std::uint32_t patch[4] = {1, 2, 3, 4};
  for (int maj = 0; maj < 4; ++maj) {
    b.write_words(fabric::FrameAddress{fabric::ColumnType::kClb, maj, 0}, 2,
                  patch);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fabric::ConfigMemory::diff_frames(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConfigMemoryIncrementalDiff);

static void BM_OpbTransaction(benchmark::State& state) {
  Platform32 p;
  sim::SimTime t;
  for (auto _ : state) {
    t = p.cpu().plb().write(Platform32::kSramRange.base, 42, 4, t);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpbTransaction);

static void BM_CpuUncachedLoad(benchmark::State& state) {
  Platform32 p;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.cpu().load32(Platform32::kSramRange.base));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CpuUncachedLoad);

static void BM_IcapFeedWord(benchmark::State& state) {
  Platform32 p;
  const auto comp = hw::component_for(hw::kBrightness, 32);
  const auto linked = p.linker().link_single(comp);
  const auto words = bitstream::serialize(*linked.config);
  std::size_t i = 0;
  for (auto _ : state) {
    p.icap_ctl().feed_word(words[i % words.size()]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IcapFeedWord);

static void BM_BitLinkerAssembly(benchmark::State& state) {
  Platform32 p;
  const auto comp = hw::component_for(hw::kBrightness, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.linker().link_single(comp));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitLinkerAssembly);

// The manager's steady-state swap with warm plans: alternate two modules,
// every ensure hits the differential-plan cache and streams pre-encoded
// words. Host work per swap is the simulated streaming loop only.
static void BM_EnsureCachedDiff(benchmark::State& state) {
  Platform32 p;
  ModuleManager<Platform32> mgr{p};
  (void)mgr.ensure(hw::kBrightness, 32);
  (void)mgr.ensure(hw::kFade, 32);  // warm both diff directions
  (void)mgr.ensure(hw::kBrightness, 32);
  hw::BehaviorId next = hw::kFade;
  for (auto _ : state) {
    const EnsureStats s = mgr.ensure(next, 32);
    benchmark::DoNotOptimize(s.ok);
    next = next == hw::kFade ? hw::kBrightness : hw::kFade;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnsureCachedDiff);

// The same alternation with memoization disabled: every swap re-links both
// components, rebuilds two full-fabric states, diffs and re-encodes. The
// simulated result is byte-identical to the cached run -- this is the
// honest uncached host-time baseline for BM_EnsureCachedDiff.
static void BM_EnsureUncachedDiff(benchmark::State& state) {
  Platform32 p;
  ModuleManager<Platform32> mgr{p};
  mgr.set_plan_cache_enabled(false);
  (void)mgr.ensure(hw::kBrightness, 32);
  (void)mgr.ensure(hw::kFade, 32);
  (void)mgr.ensure(hw::kBrightness, 32);
  hw::BehaviorId next = hw::kFade;
  for (auto _ : state) {
    const EnsureStats s = mgr.ensure(next, 32);
    benchmark::DoNotOptimize(s.ok);
    next = next == hw::kFade ? hw::kBrightness : hw::kFade;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnsureUncachedDiff);

// The whole serving hot path with tracing disabled: a steady closed-loop
// workload through admission, plan-cache reconfiguration, execution and
// completion. Items = disposed requests, so the per-item time is ns per
// request -- the same quantity `serve --bench-out` records as
// BM_ServeSteadyHot_ns_per_req and CI gates against (<5% regression).
// Request-context threading, stage histograms and SLO/recorder hooks must
// stay cheap enough to hide in this number when observers are off.
static void BM_ServeSteadyHot(benchmark::State& state) {
  const serve::WorkloadSpec* w = serve::workload_by_name("steady");
  std::int64_t disposed = 0;
  for (auto _ : state) {
    Platform32 p;
    serve::ServeOptions so;
    const serve::ServeReport r = serve::run_workload(p, *w, /*seed=*/1, so);
    disposed = static_cast<std::int64_t>(r.completions.size());
    benchmark::DoNotOptimize(disposed);
  }
  state.SetItemsProcessed(state.iterations() * disposed);
}
BENCHMARK(BM_ServeSteadyHot)->Unit(benchmark::kMillisecond);

// One fleet routing decision (affinity scan + work-stealing rebalance)
// over an 8-shard mixed fleet: the global scheduler's cost per request.
// Must stay O(devices) and nanoseconds-scale -- the router sits in front
// of every request the fleet serves, so a regression here taxes the whole
// admission stream. Items = routed requests, so per-item time is ns per
// decision; CI gates it against BENCH_fleet.json's ns_per_op.
static void BM_FleetRouteDecision(benchmark::State& state) {
  serve::fleet::FleetWorkloadSpec w;
  w.requests = 1024;
  const std::vector<serve::Request> stream =
      serve::fleet::make_fleet_stream(w, /*seed=*/1);
  const std::vector<int> systems = {64, 32, 64, 32, 64, 32, 64, 32};
  for (auto _ : state) {
    serve::fleet::FleetRouter router(systems, /*affinity=*/true,
                                     /*steal_threshold=*/4, /*seed=*/1);
    for (const serve::Request& r : stream) {
      benchmark::DoNotOptimize(router.route(r));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_FleetRouteDecision);

static void BM_DmaBlock(benchmark::State& state) {
  Platform64 p;
  bench::must_load(p, hw::kSink);
  sim::SimTime t;
  const dma::DmaDescriptor d{bench::kA64, Platform64::dock_stream(), 2048,
                             true, false};
  for (auto _ : state) {
    t = p.dma().run_one(d, t);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_DmaBlock);

BENCHMARK_MAIN();
