// Table 7: 32-bit CPU-controlled transfers on the 64-bit system (section
// 4.2). "This operation is the same as the one performed in the 32-bit
// system and direct comparison of the values is legitimate. A decrease in
// transfer time between 4 and 6 times ... can be observed."
#include <cstdio>

#include "apps/drivers.hpp"
#include "bench/common.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  Platform32 p32;
  Platform64 p64;
  bench::must_load(p32, hw::kLoopback);
  bench::must_load(p64, hw::kLoopback);
  const auto data = bench::random_bytes(4 * 4096);
  apps::store_bytes(p32.cpu().plb(), bench::kA32, data);
  apps::store_bytes(p64.cpu().plb(), bench::kA64, data);

  report::Table t{
      "Table 7: 32-bit CPU-controlled transfers on the 64-bit system "
      "(vs table 2)",
      {"Operation", "Avg 64-bit sys (us)", "Avg 32-bit sys (us)",
       "Improvement"}};

  const int n = 4096;
  struct Flow {
    const char* name;
    sim::SimTime (*run)(cpu::Kernel&, bus::Addr, bus::Addr, int);
  };
  const Flow flows[] = {
      {"write (mem -> dyn region)", &apps::pio_write_seq},
      {"read (dyn region -> mem)", &apps::pio_read_seq},
      {"interleaved write/read", &apps::pio_interleaved_seq},
  };
  for (const Flow& f : flows) {
    const auto t32 = f.run(p32.kernel(), bench::kA32, Platform32::dock_data(), n);
    const auto t64 = f.run(p64.kernel(), bench::kA64, Platform64::dock_data(), n);
    t.row({f.name, report::fmt_us(sim::SimTime{t64.ps() / n}),
           report::fmt_us(sim::SimTime{t32.ps() / n}),
           report::fmt_x(static_cast<double>(t32.ps()) /
                         static_cast<double>(t64.ps()))});
  }
  t.print();
  std::printf("\nImprovement sources: 2x bus clock, 1.5x CPU clock, and no "
              "PLB-to-OPB bridge in the path (paper section 4.2: 4-6x).\n");
  return 0;
}
