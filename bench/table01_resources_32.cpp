// Table 1: resource usage of the 32-bit system (section 3.1).
#include <cstdio>

#include "bench/common.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  Platform32 p;
  const fabric::Device& dev = p.region().device();

  report::Table t{
      "Table 1: Resource usage (32-bit system, " + dev.name() + ")",
      {"Module", "Slices", "LUTs", "FFs", "BRAMs", "% slices"}};

  fabric::Resources total;
  for (const auto& row : p.resource_table()) {
    total += row.res;
    t.row({row.module + (row.hard_block ? " [hard]" : ""),
           report::fmt_int(row.res.slices), report::fmt_int(row.res.luts),
           report::fmt_int(row.res.flip_flops),
           report::fmt_int(row.res.bram_blocks),
           report::fmt_pct(fabric::percent_of(row.res.slices,
                                              dev.total_slices()))});
  }
  t.row({"-- static total --", report::fmt_int(total.slices),
         report::fmt_int(total.luts), report::fmt_int(total.flip_flops),
         report::fmt_int(total.bram_blocks),
         report::fmt_pct(fabric::percent_of(total.slices, dev.total_slices()))});
  const auto dyn = p.region().resources();
  t.row({"Dynamic area (reserved)", report::fmt_int(dyn.slices),
         report::fmt_int(dyn.luts), report::fmt_int(dyn.flip_flops),
         report::fmt_int(dyn.bram_blocks),
         report::fmt_pct(p.region().slice_percent())});
  t.row({"Device available", report::fmt_int(dev.total_slices()),
         report::fmt_int(dev.total_clbs() * fabric::kLutsPerClb),
         report::fmt_int(dev.total_clbs() * fabric::kFlipFlopsPerClb),
         report::fmt_int(dev.total_brams()), "100.0%"});
  t.print();

  std::printf("\n%s\n", p.topology().c_str());
  std::printf("CPU 200 MHz; PLB and OPB 50 MHz. Dynamic area %dx%d CLBs "
              "(%d CLBs, %d slices, %.1f%% of the device), %d BRAMs.\n",
              p.region().rect().cols, p.region().rect().rows,
              p.region().clbs(), p.region().slices(),
              p.region().slice_percent(), p.region().bram_blocks());
  return 0;
}
