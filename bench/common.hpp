// Shared workload builders and staging addresses for the bench binaries.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/golden.hpp"
#include "apps/memio.hpp"
#include "rtr/platform.hpp"
#include "sim/random.hpp"

namespace rtr::bench {

// Workload staging (clear of the config staging area in both maps).
inline constexpr bus::Addr kA32 = Platform32::kSramRange.base + 0x0010'0000;
inline constexpr bus::Addr kB32 = Platform32::kSramRange.base + 0x0060'0000;
inline constexpr bus::Addr kOut32 = Platform32::kSramRange.base + 0x00B0'0000;
inline constexpr bus::Addr kScratch32 = Platform32::kSramRange.base + 0x0100'0000;

inline constexpr bus::Addr kA64 = Platform64::kDdrRange.base + 0x0010'0000;
inline constexpr bus::Addr kB64 = Platform64::kDdrRange.base + 0x0400'0000;
inline constexpr bus::Addr kOut64 = Platform64::kDdrRange.base + 0x0800'0000;
inline constexpr bus::Addr kStage64 = Platform64::kDdrRange.base + 0x0C00'0000;
inline constexpr bus::Addr kScratch64 = Platform64::kDdrRange.base + 0x1000'0000;

/// Random bilevel image with the pattern embedded at a known position.
struct PatternWorkload {
  apps::BinaryImage img;
  apps::Pattern8x8 pat;
  int embedded_row;
  int embedded_col;
};

inline PatternWorkload make_pattern_workload(int w, int h,
                                             std::uint64_t seed = 1) {
  sim::Rng rng{seed};
  PatternWorkload wl{apps::BinaryImage::make(w, h), {}, 0, 0};
  for (auto& word : wl.img.words) word = rng.next_u32() & rng.next_u32();
  for (auto& row : wl.pat) row = rng.next_u8();
  wl.embedded_row = static_cast<int>(rng.below(static_cast<std::uint64_t>(h - 8)));
  wl.embedded_col = static_cast<int>(rng.below(static_cast<std::uint64_t>(w - 8)));
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      wl.img.set(wl.embedded_row + r, wl.embedded_col + c,
                 (wl.pat[static_cast<std::size_t>(r)] >> c) & 1);
    }
  }
  return wl;
}

/// Byte-per-pixel pattern (64 bytes) for the software baseline's layout.
inline std::vector<std::uint8_t> pattern_bytes(const apps::Pattern8x8& pat) {
  std::vector<std::uint8_t> out(64);
  for (int i = 0; i < 64; ++i) {
    out[static_cast<std::size_t>(i)] =
        (pat[static_cast<std::size_t>(i / 8)] >> (i % 8)) & 1;
  }
  return out;
}

inline std::vector<std::uint8_t> random_bytes(std::size_t n,
                                              std::uint64_t seed = 2) {
  sim::Rng rng{seed};
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = rng.next_u8();
  return out;
}

inline apps::GrayImage random_gray(int w, int h, std::uint64_t seed = 3) {
  sim::Rng rng{seed};
  apps::GrayImage img = apps::GrayImage::make(w, h);
  for (auto& p : img.pixels) p = rng.next_u8();
  return img;
}

/// Abort-on-failure module load for bench setup.
template <typename Platform>
void must_load(Platform& p, hw::BehaviorId id) {
  const ReconfigStats s = p.load_module(id);
  RTR_CHECK(s.ok, "bench module load failed");
}

}  // namespace rtr::bench
