// Table 9: pattern matching on the 64-bit system (section 4.2). The 32-bit
// implementation is transferred "without any modifications": CPU-controlled
// 32-bit transfers. "Both software and hardware implementations perform
// considerably better ... a decrease in the hardware vs. software speedup is
// obtained, because the software implementation benefited more from the
// quicker access to memory."
#include <cstdio>

#include "apps/drivers.hpp"
#include "apps/sw_kernels.hpp"
#include "bench/common.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  report::Table t{
      "Table 9: Pattern matching in binary images (64-bit system, "
      "CPU-controlled transfers)",
      {"Image", "SW (ms)", "HW/SW (ms)", "Speedup", "SW gain vs 32-bit",
       "HW gain vs 32-bit"}};

  for (const auto& [w, h] : {std::pair{64, 48}, {128, 96}, {128, 128},
                            {256, 128}}) {
    const auto wl = bench::make_pattern_workload(w, h);
    const auto img_bytes = apps::to_bytes(wl.img);
    const auto pat_bytes = bench::pattern_bytes(wl.pat);

    // 32-bit system reference (for the gain columns).
    Platform32 ref_sw;
    apps::store_bytes(ref_sw.cpu().plb(), bench::kA32, img_bytes);
    apps::store_bytes(ref_sw.cpu().plb(), bench::kB32, pat_bytes);
    const auto t0r = ref_sw.kernel().now();
    apps::sw_pattern_match(ref_sw.kernel(), bench::kA32, w, h, bench::kB32);
    const auto sw32 = ref_sw.kernel().now() - t0r;
    Platform32 ref_hw;
    bench::must_load(ref_hw, hw::kPatternMatcher);
    apps::store_bytes(ref_hw.cpu().plb(), bench::kA32, img_bytes);
    apps::store_bytes(ref_hw.cpu().plb(), bench::kB32, pat_bytes);
    const auto t1r = ref_hw.kernel().now();
    apps::hw_pattern_match_pio(ref_hw.kernel(), Platform32::dock_data(),
                               bench::kA32, w, h, bench::kB32);
    const auto hw32 = ref_hw.kernel().now() - t1r;

    // 64-bit system.
    Platform64 sw_p;
    apps::store_bytes(sw_p.cpu().plb(), bench::kA64, img_bytes);
    apps::store_bytes(sw_p.cpu().plb(), bench::kB64, pat_bytes);
    const auto t0 = sw_p.kernel().now();
    const auto sw_res =
        apps::sw_pattern_match(sw_p.kernel(), bench::kA64, w, h, bench::kB64);
    const auto sw64 = sw_p.kernel().now() - t0;

    Platform64 hw_p;
    bench::must_load(hw_p, hw::kPatternMatcher);
    apps::store_bytes(hw_p.cpu().plb(), bench::kA64, img_bytes);
    apps::store_bytes(hw_p.cpu().plb(), bench::kB64, pat_bytes);
    const auto t1 = hw_p.kernel().now();
    const auto hw_res = apps::hw_pattern_match_pio(
        hw_p.kernel(), Platform64::dock_data(), bench::kA64, w, h, bench::kB64);
    const auto hw64 = hw_p.kernel().now() - t1;

    RTR_CHECK(sw_res.best_count == hw_res.best_count &&
                  sw_res.best_row == hw_res.best_row,
              "SW and HW disagree");

    char size[32];
    std::snprintf(size, sizeof size, "%dx%d", w, h);
    t.row({size, report::fmt_ms(sw64), report::fmt_ms(hw64),
           report::fmt_x(static_cast<double>(sw64.ps()) /
                         static_cast<double>(hw64.ps())),
           report::fmt_x(static_cast<double>(sw32.ps()) /
                         static_cast<double>(sw64.ps())),
           report::fmt_x(static_cast<double>(hw32.ps()) /
                         static_cast<double>(hw64.ps()))});
  }
  t.print();
  std::printf("\nCompare with table 3: both versions gain; the hardware "
              "implementations maintain a considerable advantage.\n");
  return 0;
}
