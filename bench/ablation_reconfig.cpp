// Ablation: reconfiguration cost (not a paper table; quantifies the design
// choices of section 2.2).
//  * complete (BitLinker) configuration load time per module, both systems;
//  * differential configuration size vs complete (the trade-off the paper
//    describes: differential is smaller/faster but correct only from a
//    known prior state);
//  * ICAP-only lower bound vs CPU-driven load (the driver loop overhead).
#include <cstdio>

#include "bench/common.hpp"
#include "bitlinker/bitlinker.hpp"
#include "bitstream/partial_config.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  report::Table t{
      "Ablation: module reconfiguration cost (complete configurations)",
      {"Module", "KB (32-bit sys)", "KB (64-bit sys)", "Load 32-bit sys (ms)",
       "Load 64-bit sys (ms)"}};

  for (hw::BehaviorId id : {hw::kPatternMatcher, hw::kJenkinsHash,
                            hw::kBrightness, hw::kBlendAdd, hw::kFade,
                            hw::kSha1}) {
    Platform32 p32;
    Platform64 p64;
    const auto s32 = p32.load_module(id);
    const auto s64 = p64.load_module(id);
    t.row({hw::component_for(id, 32).name,
           s32.ok ? report::fmt_int(s32.config_bytes / 1024)
                  : std::string("-"),
           report::fmt_int(s64.config_bytes / 1024),
           s32.ok ? report::fmt_ms(s32.duration()) : std::string("does not fit"),
           s64.ok ? report::fmt_ms(s64.duration()) : std::string("-")});
  }
  t.print();

  // Differential vs complete: assemble brightness assuming fade is loaded.
  {
    Platform32 p;
    const auto fade = hw::component_for(hw::kFade, 32);
    const auto bright = hw::component_for(hw::kBrightness, 32);
    const auto full_fade = p.linker().link_single(fade);
    RTR_CHECK(full_fade.ok(), "link failed");
    fabric::ConfigMemory holding_fade{p.region().device()};
    full_fade.config->apply_to(holding_fade);

    bitlinker::LinkJob job;
    job.parts.push_back({&bright, {}});
    job.behavior_id = bright.behavior_id;
    const auto diff = p.linker().link_differential(job, holding_fade);
    const auto full = p.linker().link(job);
    RTR_CHECK(diff.ok() && full.ok(), "link failed");

    report::Table d{
        "Ablation: differential vs complete configuration (fade -> "
        "brightness, 32-bit region)",
        {"Flavour", "Frames", "Payload KB", "Safe from any prior state?"}};
    d.row({"complete (BitLinker)", report::fmt_int(full.stats.frames),
           report::fmt_int(full.stats.payload_bytes / 1024), "yes"});
    d.row({"differential", report::fmt_int(diff.stats.frames),
           report::fmt_int(diff.stats.payload_bytes / 1024),
           "no (assumes fade loaded)"});
    d.print();
  }

  // ICAP-only lower bound: feed the stream at the peripheral's own rate
  // (no CPU fetch loop), 32-bit system.
  {
    Platform32 p;
    const auto comp = hw::component_for(hw::kBrightness, 32);
    const auto linked = p.linker().link_single(comp);
    RTR_CHECK(linked.ok(), "link failed");
    const auto words = bitstream::serialize(*linked.config);

    // 9 OPB cycles per word through the bus (arb 2 + addr 1 + ICAP 5 +
    // completion 1) with zero driver overhead.
    const auto icap_only =
        sim::SimTime{static_cast<std::int64_t>(words.size()) * 9 * 20000};
    const auto driven = p.load_module(hw::kBrightness);
    RTR_CHECK(driven.ok, "load failed");

    report::Table l{"Ablation: ICAP throughput bound vs CPU-driven load "
                    "(brightness, 32-bit system)",
                    {"Path", "Time (ms)", "Effective MB/s"}};
    const double mb = static_cast<double>(words.size()) * 4 / (1024.0 * 1024.0);
    char b1[32], b2[32];
    std::snprintf(b1, sizeof b1, "%.1f", mb / icap_only.seconds());
    std::snprintf(b2, sizeof b2, "%.1f", mb / driven.duration().seconds());
    l.row({"HWICAP back-to-back bound", report::fmt_ms(icap_only), b1});
    l.row({"CPU fetch + store loop (measured)", report::fmt_ms(driven.duration()), b2});
    l.print();
    std::printf("\nThe CPU-driven loop pays a memory fetch per word; the "
                "HWICAP bound is what a configuration DMA would approach.\n");
  }
  return 0;
}
