// Table 5: speedups for simple grayscale image-processing tasks, 32-bit
// system (section 3.2): brightness adjustment (4 px per transfer), additive
// blending and fade (2+2 px per write, packed groups of 4 read back). The
// two-source tasks include the CPU's combining overhead, which is why their
// speedups are smaller; blending is simpler than fade and so benefits least.
#include <cstdio>

#include "apps/drivers.hpp"
#include "apps/sw_kernels.hpp"
#include "bench/common.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  const int w = 256, h = 128;
  const int n = w * h;
  const auto a = bench::random_gray(w, h, 11);
  const auto b = bench::random_gray(w, h, 12);

  report::Table t{
      "Table 5: Simple image processing tasks (8-bit grayscale, 256x128, "
      "32-bit system)",
      {"Task", "SW (ms)", "HW/SW (ms)", "Speedup"}};

  auto run = [&](const char* name, auto sw_fn, auto hw_fn,
                 hw::BehaviorId id, const std::vector<std::uint8_t>& want) {
    Platform32 sw_p;
    apps::store_bytes(sw_p.cpu().plb(), bench::kA32, a.pixels);
    apps::store_bytes(sw_p.cpu().plb(), bench::kB32, b.pixels);
    const auto sw_t0 = sw_p.kernel().now();
    sw_fn(sw_p);
    const auto sw_time = sw_p.kernel().now() - sw_t0;
    RTR_CHECK(apps::fetch_bytes(sw_p.cpu().plb(), bench::kOut32, want.size()) ==
                  want,
              "SW result wrong");

    Platform32 hw_p;
    bench::must_load(hw_p, id);
    apps::store_bytes(hw_p.cpu().plb(), bench::kA32, a.pixels);
    apps::store_bytes(hw_p.cpu().plb(), bench::kB32, b.pixels);
    const auto hw_t0 = hw_p.kernel().now();
    hw_fn(hw_p);
    const auto hw_time = hw_p.kernel().now() - hw_t0;
    RTR_CHECK(apps::fetch_bytes(hw_p.cpu().plb(), bench::kOut32, want.size()) ==
                  want,
              "HW result wrong");

    t.row({name, report::fmt_ms(sw_time), report::fmt_ms(hw_time),
           report::fmt_x(static_cast<double>(sw_time.ps()) /
                         static_cast<double>(hw_time.ps()))});
  };

  run(
      "brightness adjustment (+60)",
      [&](Platform32& p) {
        apps::sw_brightness(p.kernel(), bench::kA32, bench::kOut32, n, 60);
      },
      [&](Platform32& p) {
        apps::hw_brightness_pio(p.kernel(), Platform32::dock_data(),
                                bench::kA32, bench::kOut32, n, 60);
      },
      hw::kBrightness, apps::brightness(a, 60).pixels);

  run(
      "additive blending",
      [&](Platform32& p) {
        apps::sw_blend(p.kernel(), bench::kA32, bench::kB32, bench::kOut32, n);
      },
      [&](Platform32& p) {
        apps::hw_blend_pio(p.kernel(), Platform32::dock_data(), bench::kA32,
                           bench::kB32, bench::kOut32, n);
      },
      hw::kBlendAdd, apps::blend_add(a, b).pixels);

  run(
      "fade effect (f=160)",
      [&](Platform32& p) {
        apps::sw_fade(p.kernel(), bench::kA32, bench::kB32, bench::kOut32, n,
                      160);
      },
      [&](Platform32& p) {
        apps::hw_fade_pio(p.kernel(), Platform32::dock_data(), bench::kA32,
                          bench::kB32, bench::kOut32, n, 160);
      },
      hw::kFade, apps::fade(a, b, 160).pixels);

  t.print();
  std::printf("\nThe two last tasks require that data from two sources be "
              "combined by the CPU before being sent to the dynamic area -- "
              "included in the measured times (paper section 3.2).\n");
  return 0;
}
