// Figure-style sweep: programmed I/O vs DMA as a function of transfer size
// (64-bit system). DMA pays fixed costs (descriptor setup, completion
// interrupt) that only amortise over enough data -- the crossover is the
// quantitative version of the paper's conclusion that DMA "poses significant
// restrictions ... when the difficulties can be overcome, significantly
// better performance can be achieved".
#include <cstdio>

#include "apps/drivers.hpp"
#include "bench/common.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  report::Table t{
      "Sweep: PIO vs DMA total time by transfer size (64-bit system, "
      "write sequences, same byte count)",
      {"Bytes", "PIO 32-bit (us)", "DMA 64-bit (us)", "DMA wins?"}};

  Platform64 pio_p;
  Platform64 dma_p;
  bench::must_load(pio_p, hw::kSink);
  bench::must_load(dma_p, hw::kSink);
  const auto data = bench::random_bytes(64 * 1024);
  apps::store_bytes(pio_p.cpu().plb(), bench::kA64, data);
  apps::store_bytes(dma_p.cpu().plb(), bench::kA64, data);

  std::int64_t crossover = -1;
  for (int bytes : {8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}) {
    const auto pio = apps::pio_write_seq(pio_p.kernel(), bench::kA64,
                                         Platform64::dock_data(), bytes / 4);
    const auto dma = apps::dma_write_seq(dma_p, bench::kA64, bytes / 8);
    const bool dma_wins = dma < pio;
    if (dma_wins && crossover < 0) crossover = bytes;
    t.row({report::fmt_int(bytes), report::fmt_us(pio), report::fmt_us(dma),
           dma_wins ? "yes" : "no"});
  }
  t.print();
  if (crossover >= 0) {
    std::printf("\nDMA overtakes programmed I/O at ~%lld bytes: below that, "
                "descriptor setup and the completion interrupt dominate.\n",
                static_cast<long long>(crossover));
  } else {
    std::printf("\nDMA never overtook PIO in this sweep.\n");
  }
  return 0;
}
