// Table 4: Jenkins lookup2 hash, 32-bit system (section 3.2). "The speedup
// in this case is much more modest, since the original code had been
// optimized for 32-bit CPUs ... and the data transfer times are significant
// compared to the original software processing times."
#include <cstdio>

#include "apps/drivers.hpp"
#include "apps/sw_kernels.hpp"
#include "bench/common.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  report::Table t{"Table 4: Hash function (Jenkins lookup2, 32-bit system)",
                  {"Key bytes", "SW (us)", "HW/SW (us)", "Speedup"}};

  Platform32 sw_p;
  Platform32 hw_p;
  bench::must_load(hw_p, hw::kJenkinsHash);

  for (std::uint32_t len : {16u, 64u, 256u, 1024u, 4096u, 16384u}) {
    const auto key = bench::random_bytes(len, 100 + len);
    apps::store_bytes(sw_p.cpu().plb(), bench::kA32, key);
    apps::store_bytes(hw_p.cpu().plb(), bench::kA32, key);

    const auto sw_t0 = sw_p.kernel().now();
    const std::uint32_t sw_hash = apps::sw_jenkins(sw_p.kernel(), bench::kA32, len);
    const auto sw_time = sw_p.kernel().now() - sw_t0;

    const auto hw_t0 = hw_p.kernel().now();
    const std::uint32_t hw_hash = apps::hw_jenkins_pio(
        hw_p.kernel(), Platform32::dock_data(), bench::kA32, len);
    const auto hw_time = hw_p.kernel().now() - hw_t0;

    RTR_CHECK(sw_hash == hw_hash, "SW and HW hashes disagree");
    RTR_CHECK(sw_hash == apps::jenkins_hash(key), "hash wrong");

    t.row({report::fmt_int(len), report::fmt_us(sw_time),
           report::fmt_us(hw_time),
           report::fmt_x(static_cast<double>(sw_time.ps()) /
                         static_cast<double>(hw_time.ps()))});
  }
  t.print();
  std::printf("\nThe whole hashing function runs in the dynamic area; the key "
              "is streamed one 32-bit word per transfer.\n");
  return 0;
}
