// Table 2: measured times for data transfers between the dynamic region and
// external memory, 32-bit system (section 3.2). Transfers "use the data bus
// twice, since data is fetched from the origin to the CPU and then from the
// CPU to the destination"; times include the controlling software.
#include <cstdio>

#include "apps/drivers.hpp"
#include "bench/common.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  Platform32 p;
  bench::must_load(p, hw::kLoopback);
  const auto data = bench::random_bytes(4 * 4096);
  apps::store_bytes(p.cpu().plb(), bench::kA32, data);

  report::Table t{
      "Table 2: 32-bit transfers dynamic region <-> external memory "
      "(CPU controlled, 32-bit system)",
      {"Operation", "Transfers", "Total (us)", "Avg per transfer (us)"}};

  for (int n : {1024, 4096}) {
    const auto w = apps::pio_write_seq(p.kernel(), bench::kA32,
                                       Platform32::dock_data(), n);
    t.row({"write (mem -> dyn region)", report::fmt_int(n), report::fmt_us(w),
           report::fmt_us(sim::SimTime{w.ps() / n})});
    const auto r = apps::pio_read_seq(p.kernel(), bench::kOut32,
                                      Platform32::dock_data(), n);
    t.row({"read (dyn region -> mem)", report::fmt_int(n), report::fmt_us(r),
           report::fmt_us(sim::SimTime{r.ps() / n})});
    const auto i = apps::pio_interleaved_seq(p.kernel(), bench::kA32,
                                             Platform32::dock_data(), n);
    t.row({"interleaved write/read", report::fmt_int(n), report::fmt_us(i),
           report::fmt_us(sim::SimTime{i.ps() / n})});
  }
  t.print();
  std::printf("\nLower bound for using the dynamic area from software "
              "(paper section 3.2).\n");
  return 0;
}
