// Table 3: pattern matching in binary images, 32-bit system (section 3.2).
// "Speedup factors of more than 26 were obtained."
#include <cstdio>

#include "apps/drivers.hpp"
#include "apps/sw_kernels.hpp"
#include "bench/common.hpp"
#include "report/table.hpp"

using namespace rtr;

int main() {
  report::Table t{
      "Table 3: Pattern matching in binary images (32-bit system)",
      {"Image", "SW (ms)", "HW/SW (ms)", "Speedup", "Match@"}};

  for (const auto& [w, h] : {std::pair{64, 48}, {128, 96}, {128, 128},
                            {256, 128}}) {
    const auto wl = bench::make_pattern_workload(w, h);
    const auto img_bytes = apps::to_bytes(wl.img);
    const auto pat_bytes = bench::pattern_bytes(wl.pat);

    Platform32 sw_p;
    apps::store_bytes(sw_p.cpu().plb(), bench::kA32, img_bytes);
    apps::store_bytes(sw_p.cpu().plb(), bench::kB32, pat_bytes);
    const auto sw_t0 = sw_p.kernel().now();
    const auto sw_res =
        apps::sw_pattern_match(sw_p.kernel(), bench::kA32, w, h, bench::kB32);
    const auto sw_time = sw_p.kernel().now() - sw_t0;

    Platform32 hw_p;
    bench::must_load(hw_p, hw::kPatternMatcher);
    apps::store_bytes(hw_p.cpu().plb(), bench::kA32, img_bytes);
    apps::store_bytes(hw_p.cpu().plb(), bench::kB32, pat_bytes);
    const auto hw_t0 = hw_p.kernel().now();
    const auto hw_res = apps::hw_pattern_match_pio(
        hw_p.kernel(), Platform32::dock_data(), bench::kA32, w, h, bench::kB32);
    const auto hw_time = hw_p.kernel().now() - hw_t0;

    RTR_CHECK(sw_res.best_count == hw_res.best_count &&
                  sw_res.best_row == hw_res.best_row &&
                  sw_res.best_col == hw_res.best_col,
              "SW and HW disagree");
    RTR_CHECK(hw_res.best_count == 64 && hw_res.best_row == wl.embedded_row &&
                  hw_res.best_col == wl.embedded_col,
              "embedded pattern not found");

    char size[32], at[32];
    std::snprintf(size, sizeof size, "%dx%d", w, h);
    std::snprintf(at, sizeof at, "(%d,%d)", hw_res.best_row, hw_res.best_col);
    t.row({size, report::fmt_ms(sw_time), report::fmt_ms(hw_time),
           report::fmt_x(static_cast<double>(sw_time.ps()) /
                         static_cast<double>(hw_time.ps())),
           at});
  }
  t.print();
  std::printf("\nHW/SW: 8-stage matching pipeline in the dynamic area; image "
              "streamed 4 pixels per 32-bit transfer; one count read per "
              "window position. Task time only (reconfiguration reported by "
              "ablation_reconfig).\n");
  return 0;
}
