# Empty compiler generated dependencies file for rtrsim_cli.
# This may be replaced when dependencies are built.
