file(REMOVE_RECURSE
  "CMakeFiles/rtrsim_cli.dir/rtrsim_cli.cpp.o"
  "CMakeFiles/rtrsim_cli.dir/rtrsim_cli.cpp.o.d"
  "rtrsim_cli"
  "rtrsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtrsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
