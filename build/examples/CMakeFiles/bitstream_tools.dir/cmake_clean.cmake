file(REMOVE_RECURSE
  "CMakeFiles/bitstream_tools.dir/bitstream_tools.cpp.o"
  "CMakeFiles/bitstream_tools.dir/bitstream_tools.cpp.o.d"
  "bitstream_tools"
  "bitstream_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitstream_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
