# Empty dependencies file for bitstream_tools.
# This may be replaced when dependencies are built.
