# Empty compiler generated dependencies file for pattern_match_demo.
# This may be replaced when dependencies are built.
