file(REMOVE_RECURSE
  "CMakeFiles/pattern_match_demo.dir/pattern_match_demo.cpp.o"
  "CMakeFiles/pattern_match_demo.dir/pattern_match_demo.cpp.o.d"
  "pattern_match_demo"
  "pattern_match_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_match_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
