# Empty compiler generated dependencies file for dual_region_demo.
# This may be replaced when dependencies are built.
