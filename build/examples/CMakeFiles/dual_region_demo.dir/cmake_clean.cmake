file(REMOVE_RECURSE
  "CMakeFiles/dual_region_demo.dir/dual_region_demo.cpp.o"
  "CMakeFiles/dual_region_demo.dir/dual_region_demo.cpp.o.d"
  "dual_region_demo"
  "dual_region_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_region_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
