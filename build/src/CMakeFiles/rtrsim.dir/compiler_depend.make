# Empty compiler generated dependencies file for rtrsim.
# This may be replaced when dependencies are built.
