
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/drivers.cpp" "src/CMakeFiles/rtrsim.dir/apps/drivers.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/apps/drivers.cpp.o.d"
  "/root/repo/src/apps/golden.cpp" "src/CMakeFiles/rtrsim.dir/apps/golden.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/apps/golden.cpp.o.d"
  "/root/repo/src/apps/sw_kernels.cpp" "src/CMakeFiles/rtrsim.dir/apps/sw_kernels.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/apps/sw_kernels.cpp.o.d"
  "/root/repo/src/bitlinker/bitlinker.cpp" "src/CMakeFiles/rtrsim.dir/bitlinker/bitlinker.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/bitlinker/bitlinker.cpp.o.d"
  "/root/repo/src/bitlinker/component.cpp" "src/CMakeFiles/rtrsim.dir/bitlinker/component.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/bitlinker/component.cpp.o.d"
  "/root/repo/src/bitstream/bitfile.cpp" "src/CMakeFiles/rtrsim.dir/bitstream/bitfile.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/bitstream/bitfile.cpp.o.d"
  "/root/repo/src/bitstream/crc.cpp" "src/CMakeFiles/rtrsim.dir/bitstream/crc.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/bitstream/crc.cpp.o.d"
  "/root/repo/src/bitstream/partial_config.cpp" "src/CMakeFiles/rtrsim.dir/bitstream/partial_config.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/bitstream/partial_config.cpp.o.d"
  "/root/repo/src/bus/bridge.cpp" "src/CMakeFiles/rtrsim.dir/bus/bridge.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/bus/bridge.cpp.o.d"
  "/root/repo/src/bus/bus.cpp" "src/CMakeFiles/rtrsim.dir/bus/bus.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/bus/bus.cpp.o.d"
  "/root/repo/src/busmacro/bus_macro.cpp" "src/CMakeFiles/rtrsim.dir/busmacro/bus_macro.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/busmacro/bus_macro.cpp.o.d"
  "/root/repo/src/cpu/cache.cpp" "src/CMakeFiles/rtrsim.dir/cpu/cache.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/cpu/cache.cpp.o.d"
  "/root/repo/src/cpu/ppc405.cpp" "src/CMakeFiles/rtrsim.dir/cpu/ppc405.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/cpu/ppc405.cpp.o.d"
  "/root/repo/src/dma/dma.cpp" "src/CMakeFiles/rtrsim.dir/dma/dma.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/dma/dma.cpp.o.d"
  "/root/repo/src/dock/plb_dock.cpp" "src/CMakeFiles/rtrsim.dir/dock/plb_dock.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/dock/plb_dock.cpp.o.d"
  "/root/repo/src/fabric/config_memory.cpp" "src/CMakeFiles/rtrsim.dir/fabric/config_memory.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/fabric/config_memory.cpp.o.d"
  "/root/repo/src/fabric/device.cpp" "src/CMakeFiles/rtrsim.dir/fabric/device.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/fabric/device.cpp.o.d"
  "/root/repo/src/fabric/dynamic_region.cpp" "src/CMakeFiles/rtrsim.dir/fabric/dynamic_region.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/fabric/dynamic_region.cpp.o.d"
  "/root/repo/src/hw/hash_units.cpp" "src/CMakeFiles/rtrsim.dir/hw/hash_units.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/hw/hash_units.cpp.o.d"
  "/root/repo/src/hw/image_units.cpp" "src/CMakeFiles/rtrsim.dir/hw/image_units.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/hw/image_units.cpp.o.d"
  "/root/repo/src/hw/library.cpp" "src/CMakeFiles/rtrsim.dir/hw/library.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/hw/library.cpp.o.d"
  "/root/repo/src/hw/pattern_matcher.cpp" "src/CMakeFiles/rtrsim.dir/hw/pattern_matcher.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/hw/pattern_matcher.cpp.o.d"
  "/root/repo/src/icap/icap.cpp" "src/CMakeFiles/rtrsim.dir/icap/icap.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/icap/icap.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/CMakeFiles/rtrsim.dir/report/table.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/report/table.cpp.o.d"
  "/root/repo/src/rtr/platform.cpp" "src/CMakeFiles/rtrsim.dir/rtr/platform.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/rtr/platform.cpp.o.d"
  "/root/repo/src/rtr/platform_dual.cpp" "src/CMakeFiles/rtrsim.dir/rtr/platform_dual.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/rtr/platform_dual.cpp.o.d"
  "/root/repo/src/rtr/readback.cpp" "src/CMakeFiles/rtrsim.dir/rtr/readback.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/rtr/readback.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/rtrsim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/log.cpp" "src/CMakeFiles/rtrsim.dir/sim/log.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/sim/log.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/rtrsim.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/time.cpp" "src/CMakeFiles/rtrsim.dir/sim/time.cpp.o" "gcc" "src/CMakeFiles/rtrsim.dir/sim/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
