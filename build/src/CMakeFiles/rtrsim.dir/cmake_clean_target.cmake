file(REMOVE_RECURSE
  "librtrsim.a"
)
