# Empty compiler generated dependencies file for table11_sha1_64.
# This may be replaced when dependencies are built.
