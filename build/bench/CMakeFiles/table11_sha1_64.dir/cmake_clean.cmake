file(REMOVE_RECURSE
  "CMakeFiles/table11_sha1_64.dir/table11_sha1_64.cpp.o"
  "CMakeFiles/table11_sha1_64.dir/table11_sha1_64.cpp.o.d"
  "table11_sha1_64"
  "table11_sha1_64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table11_sha1_64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
