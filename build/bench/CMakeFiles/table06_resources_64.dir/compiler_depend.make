# Empty compiler generated dependencies file for table06_resources_64.
# This may be replaced when dependencies are built.
