file(REMOVE_RECURSE
  "CMakeFiles/table06_resources_64.dir/table06_resources_64.cpp.o"
  "CMakeFiles/table06_resources_64.dir/table06_resources_64.cpp.o.d"
  "table06_resources_64"
  "table06_resources_64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_resources_64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
