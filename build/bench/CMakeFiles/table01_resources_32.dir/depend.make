# Empty dependencies file for table01_resources_32.
# This may be replaced when dependencies are built.
