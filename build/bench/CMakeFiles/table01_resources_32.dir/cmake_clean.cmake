file(REMOVE_RECURSE
  "CMakeFiles/table01_resources_32.dir/table01_resources_32.cpp.o"
  "CMakeFiles/table01_resources_32.dir/table01_resources_32.cpp.o.d"
  "table01_resources_32"
  "table01_resources_32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_resources_32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
