# Empty dependencies file for ablation_fifo.
# This may be replaced when dependencies are built.
