file(REMOVE_RECURSE
  "CMakeFiles/ablation_fifo.dir/ablation_fifo.cpp.o"
  "CMakeFiles/ablation_fifo.dir/ablation_fifo.cpp.o.d"
  "ablation_fifo"
  "ablation_fifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
