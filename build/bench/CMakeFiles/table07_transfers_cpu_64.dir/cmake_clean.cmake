file(REMOVE_RECURSE
  "CMakeFiles/table07_transfers_cpu_64.dir/table07_transfers_cpu_64.cpp.o"
  "CMakeFiles/table07_transfers_cpu_64.dir/table07_transfers_cpu_64.cpp.o.d"
  "table07_transfers_cpu_64"
  "table07_transfers_cpu_64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_transfers_cpu_64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
