# Empty dependencies file for table07_transfers_cpu_64.
# This may be replaced when dependencies are built.
