# Empty dependencies file for table05_image_32.
# This may be replaced when dependencies are built.
