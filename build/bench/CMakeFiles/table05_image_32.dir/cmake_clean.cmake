file(REMOVE_RECURSE
  "CMakeFiles/table05_image_32.dir/table05_image_32.cpp.o"
  "CMakeFiles/table05_image_32.dir/table05_image_32.cpp.o.d"
  "table05_image_32"
  "table05_image_32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table05_image_32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
