# Empty compiler generated dependencies file for table10_hash_64.
# This may be replaced when dependencies are built.
