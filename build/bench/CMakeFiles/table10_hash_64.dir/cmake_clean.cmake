file(REMOVE_RECURSE
  "CMakeFiles/table10_hash_64.dir/table10_hash_64.cpp.o"
  "CMakeFiles/table10_hash_64.dir/table10_hash_64.cpp.o.d"
  "table10_hash_64"
  "table10_hash_64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_hash_64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
