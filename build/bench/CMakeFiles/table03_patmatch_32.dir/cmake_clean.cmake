file(REMOVE_RECURSE
  "CMakeFiles/table03_patmatch_32.dir/table03_patmatch_32.cpp.o"
  "CMakeFiles/table03_patmatch_32.dir/table03_patmatch_32.cpp.o.d"
  "table03_patmatch_32"
  "table03_patmatch_32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_patmatch_32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
