# Empty dependencies file for table03_patmatch_32.
# This may be replaced when dependencies are built.
