# Empty dependencies file for table09_patmatch_64.
# This may be replaced when dependencies are built.
