file(REMOVE_RECURSE
  "CMakeFiles/table09_patmatch_64.dir/table09_patmatch_64.cpp.o"
  "CMakeFiles/table09_patmatch_64.dir/table09_patmatch_64.cpp.o.d"
  "table09_patmatch_64"
  "table09_patmatch_64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table09_patmatch_64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
