file(REMOVE_RECURSE
  "CMakeFiles/extension_features.dir/extension_features.cpp.o"
  "CMakeFiles/extension_features.dir/extension_features.cpp.o.d"
  "extension_features"
  "extension_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
