# Empty compiler generated dependencies file for extension_features.
# This may be replaced when dependencies are built.
