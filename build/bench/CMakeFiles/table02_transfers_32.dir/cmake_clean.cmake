file(REMOVE_RECURSE
  "CMakeFiles/table02_transfers_32.dir/table02_transfers_32.cpp.o"
  "CMakeFiles/table02_transfers_32.dir/table02_transfers_32.cpp.o.d"
  "table02_transfers_32"
  "table02_transfers_32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_transfers_32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
