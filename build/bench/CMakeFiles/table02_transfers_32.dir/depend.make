# Empty dependencies file for table02_transfers_32.
# This may be replaced when dependencies are built.
