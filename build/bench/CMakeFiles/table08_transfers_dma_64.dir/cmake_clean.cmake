file(REMOVE_RECURSE
  "CMakeFiles/table08_transfers_dma_64.dir/table08_transfers_dma_64.cpp.o"
  "CMakeFiles/table08_transfers_dma_64.dir/table08_transfers_dma_64.cpp.o.d"
  "table08_transfers_dma_64"
  "table08_transfers_dma_64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_transfers_dma_64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
