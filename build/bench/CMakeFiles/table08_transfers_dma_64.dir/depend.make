# Empty dependencies file for table08_transfers_dma_64.
# This may be replaced when dependencies are built.
