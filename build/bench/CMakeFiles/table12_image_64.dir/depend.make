# Empty dependencies file for table12_image_64.
# This may be replaced when dependencies are built.
