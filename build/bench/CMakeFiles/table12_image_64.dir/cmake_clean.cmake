file(REMOVE_RECURSE
  "CMakeFiles/table12_image_64.dir/table12_image_64.cpp.o"
  "CMakeFiles/table12_image_64.dir/table12_image_64.cpp.o.d"
  "table12_image_64"
  "table12_image_64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_image_64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
