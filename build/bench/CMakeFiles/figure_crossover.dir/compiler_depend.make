# Empty compiler generated dependencies file for figure_crossover.
# This may be replaced when dependencies are built.
