file(REMOVE_RECURSE
  "CMakeFiles/figure_crossover.dir/figure_crossover.cpp.o"
  "CMakeFiles/figure_crossover.dir/figure_crossover.cpp.o.d"
  "figure_crossover"
  "figure_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
