# Empty compiler generated dependencies file for table04_hash_32.
# This may be replaced when dependencies are built.
