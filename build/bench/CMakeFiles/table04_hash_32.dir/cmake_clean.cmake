file(REMOVE_RECURSE
  "CMakeFiles/table04_hash_32.dir/table04_hash_32.cpp.o"
  "CMakeFiles/table04_hash_32.dir/table04_hash_32.cpp.o.d"
  "table04_hash_32"
  "table04_hash_32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_hash_32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
