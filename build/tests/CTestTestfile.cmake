# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/bitstream_test[1]_include.cmake")
include("/root/repo/build/tests/bitlinker_test[1]_include.cmake")
include("/root/repo/build/tests/bus_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/icap_test[1]_include.cmake")
include("/root/repo/build/tests/dock_dma_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/hw_modules_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/peripherals_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/manager_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
