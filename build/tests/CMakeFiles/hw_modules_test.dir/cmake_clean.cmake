file(REMOVE_RECURSE
  "CMakeFiles/hw_modules_test.dir/hw_modules_test.cpp.o"
  "CMakeFiles/hw_modules_test.dir/hw_modules_test.cpp.o.d"
  "hw_modules_test"
  "hw_modules_test.pdb"
  "hw_modules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_modules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
