# Empty compiler generated dependencies file for hw_modules_test.
# This may be replaced when dependencies are built.
