file(REMOVE_RECURSE
  "CMakeFiles/peripherals_test.dir/peripherals_test.cpp.o"
  "CMakeFiles/peripherals_test.dir/peripherals_test.cpp.o.d"
  "peripherals_test"
  "peripherals_test.pdb"
  "peripherals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peripherals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
