# Empty dependencies file for peripherals_test.
# This may be replaced when dependencies are built.
