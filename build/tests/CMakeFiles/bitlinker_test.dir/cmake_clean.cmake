file(REMOVE_RECURSE
  "CMakeFiles/bitlinker_test.dir/bitlinker_test.cpp.o"
  "CMakeFiles/bitlinker_test.dir/bitlinker_test.cpp.o.d"
  "bitlinker_test"
  "bitlinker_test.pdb"
  "bitlinker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitlinker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
