# Empty compiler generated dependencies file for bitlinker_test.
# This may be replaced when dependencies are built.
