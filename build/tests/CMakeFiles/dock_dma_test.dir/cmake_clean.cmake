file(REMOVE_RECURSE
  "CMakeFiles/dock_dma_test.dir/dock_dma_test.cpp.o"
  "CMakeFiles/dock_dma_test.dir/dock_dma_test.cpp.o.d"
  "dock_dma_test"
  "dock_dma_test.pdb"
  "dock_dma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dock_dma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
