# Empty compiler generated dependencies file for dock_dma_test.
# This may be replaced when dependencies are built.
