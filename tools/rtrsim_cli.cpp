// rtrsim command-line front end.
//
//   rtrsim_cli topology  --system 32|64|dual
//   rtrsim_cli resources --system 32|64
//   rtrsim_cli run       --system 32|64 --task <name> [--bytes N] [--image WxH]
//                        [--dma] [--cache]
//   rtrsim_cli reconfig  --system 32|64 --task <name> [--dma]
//
// Observability (run/reconfig):
//   --trace-out FILE      record spans and write a trace
//   --trace-format chrome|text   (default chrome: open in Perfetto)
//   --stats-out FILE      dump the whole stat registry
//   --stats-format json|csv      (default json)
//   --log-level err|warn|info|trace   component log to stderr
//
// Tasks: jenkins, sha1, patmatch, brightness, blend, fade, loopback.
// Every run executes both the software baseline and the hardware version
// and cross-checks them, printing simulated times and the speedup.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "apps/drivers.hpp"
#include "apps/golden.hpp"
#include "apps/memio.hpp"
#include "apps/sw_kernels.hpp"
#include "report/table.hpp"
#include "rtr/platform.hpp"
#include "rtr/platform_dual.hpp"
#include "sim/random.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace rtr;
using bus::Addr;

struct Args {
  std::string command;
  int system = 32;
  std::string task = "jenkins";
  std::uint32_t bytes = 4096;
  int img_w = 128;
  int img_h = 96;
  bool dma = false;
  bool cache = false;
  bool dual = false;
  std::string trace_out;
  std::string trace_format = "chrome";
  std::string stats_out;
  std::string stats_format = "json";
  std::string log_level;  // empty: logging off
};

int usage() {
  std::fprintf(stderr,
               "usage: rtrsim_cli <topology|resources|run|reconfig> "
               "[--system 32|64|dual] [--task NAME] [--bytes N] "
               "[--image WxH] [--dma] [--cache]\n"
               "       [--trace-out FILE] [--trace-format chrome|text]\n"
               "       [--stats-out FILE] [--stats-format json|csv]\n"
               "       [--log-level err|warn|info|trace]\n"
               "tasks: jenkins sha1 patmatch brightness blend fade loopback\n");
  return 2;
}

/// Strict decimal parse: the whole string must be a number (atoi-style
/// silent zero-on-garbage is how "--bytes 4k" becomes a 0-byte run).
bool parse_i64(const char* s, long long* out) {
  if (!s || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse(int argc, char** argv, Args& a) {
  if (argc < 2) return false;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string opt = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (opt == "--system") {
      const char* v = value();
      if (!v) return false;
      if (std::string(v) == "dual") {
        a.dual = true;
        a.system = 64;
      } else {
        long long n = 0;
        if (!parse_i64(v, &n)) return false;
        a.system = static_cast<int>(n);
      }
    } else if (opt == "--task") {
      const char* v = value();
      if (!v) return false;
      a.task = v;
    } else if (opt == "--bytes") {
      long long n = 0;
      if (!parse_i64(value(), &n) || n < 0 || n > UINT32_MAX) return false;
      a.bytes = static_cast<std::uint32_t>(n);
    } else if (opt == "--image") {
      const char* v = value();
      char trailing;
      if (!v ||
          std::sscanf(v, "%dx%d%c", &a.img_w, &a.img_h, &trailing) != 2 ||
          a.img_w <= 0 || a.img_h <= 0) {
        return false;
      }
    } else if (opt == "--dma") {
      a.dma = true;
    } else if (opt == "--cache") {
      a.cache = true;
    } else if (opt == "--trace-out") {
      const char* v = value();
      if (!v) return false;
      a.trace_out = v;
    } else if (opt == "--trace-format") {
      const char* v = value();
      if (!v) return false;
      a.trace_format = v;
      if (a.trace_format != "chrome" && a.trace_format != "text") return false;
    } else if (opt == "--stats-out") {
      const char* v = value();
      if (!v) return false;
      a.stats_out = v;
    } else if (opt == "--stats-format") {
      const char* v = value();
      if (!v) return false;
      a.stats_format = v;
      if (a.stats_format != "json" && a.stats_format != "csv") return false;
    } else if (opt == "--log-level") {
      const char* v = value();
      if (!v) return false;
      a.log_level = v;
      if (a.log_level != "err" && a.log_level != "warn" &&
          a.log_level != "info" && a.log_level != "trace") {
        return false;
      }
    } else {
      return false;
    }
  }
  return a.system == 32 || a.system == 64;
}

/// Apply --log-level: install the stderr sink at the requested threshold.
void apply_log_level(sim::Simulation& sim, const Args& a) {
  if (a.log_level.empty()) return;
  sim::LogLevel lvl = sim::LogLevel::kWarn;
  if (a.log_level == "err") lvl = sim::LogLevel::kError;
  else if (a.log_level == "warn") lvl = sim::LogLevel::kWarn;
  else if (a.log_level == "info") lvl = sim::LogLevel::kInfo;
  else if (a.log_level == "trace") lvl = sim::LogLevel::kTrace;
  sim.logger().set_level(lvl);
  sim.logger().set_sink(sim::Logger::stderr_sink());
}

/// Write --trace-out / --stats-out files. Returns 0, or 1 when a file
/// cannot be opened.
int dump_observability(sim::Simulation& sim, const trace::Tracer& tracer,
                       const Args& a) {
  if (!a.trace_out.empty()) {
    std::ofstream f(a.trace_out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", a.trace_out.c_str());
      return 1;
    }
    if (a.trace_format == "text") {
      tracer.export_timeline(f);
    } else {
      tracer.export_chrome(f);
    }
  }
  if (!a.stats_out.empty()) {
    std::ofstream f(a.stats_out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", a.stats_out.c_str());
      return 1;
    }
    if (a.stats_format == "csv") {
      sim.stats().export_csv(f);
    } else {
      sim.stats().export_json(f);
    }
  }
  return 0;
}

hw::BehaviorId behavior_of(const std::string& task) {
  if (task == "jenkins") return hw::kJenkinsHash;
  if (task == "sha1") return hw::kSha1;
  if (task == "patmatch") return hw::kPatternMatcher;
  if (task == "brightness") return hw::kBrightness;
  if (task == "blend") return hw::kBlendAdd;
  if (task == "fade") return hw::kFade;
  if (task == "loopback") return hw::kLoopback;
  RTR_CHECK(false, "unknown task name");
  __builtin_unreachable();
}

template <typename Platform>
int run_task_inner(const Args& a, Platform& p) {
  const Addr in = Platform::kConfigStaging - 0x0100'0000;
  const Addr in_b = Platform::kConfigStaging - 0x00C0'0000;
  const Addr out = Platform::kConfigStaging - 0x0080'0000;
  const Addr scratch = Platform::kConfigStaging - 0x0040'0000;

  ReconfigStats load;
  if constexpr (std::is_same_v<Platform, Platform64>) {
    load = a.dma ? p.load_module_dma(behavior_of(a.task))
                 : p.load_module(behavior_of(a.task));
  } else {
    load = p.load_module(behavior_of(a.task));
  }
  if (!load.ok) {
    std::printf("load failed: %s\n", load.error.c_str());
    return 1;
  }
  std::printf("system %d, task %s: module loaded in %s (%lld KB)\n", a.system,
              a.task.c_str(), load.duration().to_string().c_str(),
              static_cast<long long>(load.config_bytes / 1024));

  sim::Rng rng{2026};
  sim::SimTime sw_time, hw_time;
  bool match = true;

  if (a.task == "jenkins" || a.task == "sha1") {
    std::vector<std::uint8_t> msg(a.bytes);
    for (auto& b : msg) b = rng.next_u8();
    apps::store_bytes(p.cpu().plb(), in, msg);
    auto t0 = p.kernel().now();
    if (a.task == "jenkins") {
      const auto sw = apps::sw_jenkins(p.kernel(), in, a.bytes);
      sw_time = p.kernel().now() - t0;
      t0 = p.kernel().now();
      const auto hw =
          apps::hw_jenkins_pio(p.kernel(), Platform::dock_data(), in, a.bytes);
      hw_time = p.kernel().now() - t0;
      match = sw == hw && sw == apps::jenkins_hash(msg);
    } else {
      const auto sw = apps::sw_sha1(p.kernel(), in, a.bytes, scratch);
      sw_time = p.kernel().now() - t0;
      t0 = p.kernel().now();
      const auto hw =
          apps::hw_sha1_pio(p.kernel(), Platform::dock_data(), in, a.bytes);
      hw_time = p.kernel().now() - t0;
      match = sw == hw && sw == apps::sha1(msg);
    }
  } else if (a.task == "patmatch") {
    apps::BinaryImage img = apps::BinaryImage::make(a.img_w, a.img_h);
    for (auto& w : img.words) w = rng.next_u32() & rng.next_u32();
    apps::Pattern8x8 pat;
    for (auto& row : pat) row = rng.next_u8();
    apps::store_bytes(p.cpu().plb(), in, apps::to_bytes(img));
    std::vector<std::uint8_t> pb(64);
    for (int i = 0; i < 64; ++i) {
      pb[static_cast<std::size_t>(i)] =
          (pat[static_cast<std::size_t>(i / 8)] >> (i % 8)) & 1;
    }
    apps::store_bytes(p.cpu().plb(), in_b, pb);
    auto t0 = p.kernel().now();
    const auto sw = apps::sw_pattern_match(p.kernel(), in, a.img_w, a.img_h, in_b);
    sw_time = p.kernel().now() - t0;
    t0 = p.kernel().now();
    const auto hw = apps::hw_pattern_match_pio(p.kernel(), Platform::dock_data(),
                                               in, a.img_w, a.img_h, in_b);
    hw_time = p.kernel().now() - t0;
    match = sw.best_count == hw.best_count && sw.best_row == hw.best_row &&
            sw.best_col == hw.best_col;
    std::printf("best match %d/64 at (%d,%d)\n", hw.best_count, hw.best_row,
                hw.best_col);
  } else if (a.task == "brightness" || a.task == "blend" || a.task == "fade") {
    const int n = a.img_w * a.img_h;
    apps::GrayImage ia = apps::GrayImage::make(a.img_w, a.img_h);
    apps::GrayImage ib = apps::GrayImage::make(a.img_w, a.img_h);
    for (auto& px : ia.pixels) px = rng.next_u8();
    for (auto& px : ib.pixels) px = rng.next_u8();
    apps::store_bytes(p.cpu().plb(), in, ia.pixels);
    apps::store_bytes(p.cpu().plb(), in_b, ib.pixels);

    std::vector<std::uint8_t> want;
    auto t0 = p.kernel().now();
    if (a.task == "brightness") {
      apps::sw_brightness(p.kernel(), in, out, n, 60);
      want = apps::brightness(ia, 60).pixels;
    } else if (a.task == "blend") {
      apps::sw_blend(p.kernel(), in, in_b, out, n);
      want = apps::blend_add(ia, ib).pixels;
    } else {
      apps::sw_fade(p.kernel(), in, in_b, out, n, 160);
      want = apps::fade(ia, ib, 160).pixels;
    }
    sw_time = p.kernel().now() - t0;
    match = apps::fetch_bytes(p.cpu().plb(), out, want.size()) == want;

    t0 = p.kernel().now();
    if constexpr (std::is_same_v<Platform, Platform64>) {
      if (a.dma) {
        if (a.task == "brightness") {
          apps::hw_brightness_dma(p, in, out, n, 60);
        } else if (a.task == "blend") {
          apps::hw_blend_dma(p, in, in_b, scratch, out, n);
        } else {
          apps::hw_fade_dma(p, in, in_b, scratch, out, n, 160);
        }
        hw_time = p.kernel().now() - t0;
        match = match &&
                apps::fetch_bytes(p.cpu().plb(), out, want.size()) == want;
      }
    }
    if (hw_time == sim::SimTime::zero()) {
      if (a.task == "brightness") {
        apps::hw_brightness_pio(p.kernel(), Platform::dock_data(), in, out, n, 60);
      } else if (a.task == "blend") {
        apps::hw_blend_pio(p.kernel(), Platform::dock_data(), in, in_b, out, n);
      } else {
        apps::hw_fade_pio(p.kernel(), Platform::dock_data(), in, in_b, out, n, 160);
      }
      hw_time = p.kernel().now() - t0;
      match = match &&
              apps::fetch_bytes(p.cpu().plb(), out, want.size()) == want;
    }
  } else if (a.task == "loopback") {
    std::vector<std::uint8_t> data(a.bytes);
    for (auto& b : data) b = rng.next_u8();
    apps::store_bytes(p.cpu().plb(), in, data);
    sw_time = apps::pio_write_seq(p.kernel(), in, Platform::dock_data(),
                                  static_cast<int>(a.bytes / 4));
    hw_time = sw_time;
    std::printf("%u bytes written to the dock in %s\n", a.bytes,
                sw_time.to_string().c_str());
    return 0;
  }

  std::printf("software: %s\nhardware: %s%s\nspeedup : %.2fx\nresults : %s\n",
              sw_time.to_string().c_str(), hw_time.to_string().c_str(),
              a.dma ? " (DMA)" : " (PIO)",
              static_cast<double>(sw_time.ps()) /
                  static_cast<double>(hw_time.ps()),
              match ? "sw == hw == golden" : "MISMATCH");
  return match ? 0 : 1;
}

/// Build the platform with observability wired in, run the task, then dump
/// the requested trace/stats files (also on failure: a failed run's trace is
/// exactly when you want one).
template <typename Platform>
int run_task(const Args& a) {
  trace::Tracer tracer;
  tracer.enable(!a.trace_out.empty());
  PlatformOptions opts;
  opts.enable_dcache = a.cache;
  opts.tracer = &tracer;
  Platform p{opts};
  apply_log_level(p.sim(), a);
  const int rc = run_task_inner(a, p);
  const int dump_rc = dump_observability(p.sim(), tracer, a);
  return rc != 0 ? rc : dump_rc;
}

template <typename Platform>
int resources() {
  Platform p;
  report::Table t{"Resource usage", {"Module", "Slices", "BRAMs"}};
  for (const auto& row : p.resource_table()) {
    t.row({row.module, report::fmt_int(row.res.slices),
           report::fmt_int(row.res.bram_blocks)});
  }
  t.print();
  std::printf("%s", p.topology().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) return usage();

  if (a.command == "topology") {
    if (a.dual) {
      std::printf("%s", Platform64Dual{}.topology().c_str());
    } else if (a.system == 32) {
      std::printf("%s", Platform32{}.topology().c_str());
    } else {
      std::printf("%s", Platform64{}.topology().c_str());
    }
    return 0;
  }
  if (a.command == "resources") {
    return a.system == 32 ? resources<Platform32>() : resources<Platform64>();
  }
  if (a.command == "reconfig") {
    trace::Tracer tracer;
    tracer.enable(!a.trace_out.empty());
    PlatformOptions opts;
    opts.tracer = &tracer;
    if (a.system == 32) {
      Platform32 p{opts};
      apply_log_level(p.sim(), a);
      const auto s = p.load_module(behavior_of(a.task));
      std::printf("%s: %s (%lld words)\n", a.task.c_str(),
                  s.ok ? s.duration().to_string().c_str() : s.error.c_str(),
                  static_cast<long long>(s.stream_words));
      const int dump_rc = dump_observability(p.sim(), tracer, a);
      return s.ok ? dump_rc : 1;
    }
    Platform64 p{opts};
    apply_log_level(p.sim(), a);
    const auto s = a.dma ? p.load_module_dma(behavior_of(a.task))
                         : p.load_module(behavior_of(a.task));
    std::printf("%s%s: %s (%lld words)\n", a.task.c_str(),
                a.dma ? " [dma]" : "",
                s.ok ? s.duration().to_string().c_str() : s.error.c_str(),
                static_cast<long long>(s.stream_words));
    const int dump_rc = dump_observability(p.sim(), tracer, a);
    return s.ok ? dump_rc : 1;
  }
  if (a.command == "run") {
    return a.system == 32 ? run_task<Platform32>(a) : run_task<Platform64>(a);
  }
  return usage();
}
