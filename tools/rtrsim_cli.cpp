// rtrsim command-line front end.
//
//   rtrsim_cli topology  --system 32|64|dual
//   rtrsim_cli resources --system 32|64
//   rtrsim_cli run       --system 32|64 --task <name> [--bytes N] [--image WxH]
//                        [--dma] [--cache]
//   rtrsim_cli reconfig  --system 32|64 --task <name> [--dma]
//   rtrsim_cli sweep     [-j N] [--smoke] [--bench-out FILE]
//   rtrsim_cli faults    [--smoke] [--seed N]
//   rtrsim_cli serve     [-j N] [--smoke] [--seed N] [--bench-out FILE]
//                        [--no-plan-cache]
//   rtrsim_cli serve     --workload NAME --system 32|64 [--seed N]
//                        [--fault-spec ...] [--repair-at N] [--dma]
//                        [--no-plan-cache]
//   rtrsim_cli chaos     [-j N] [--smoke] [--seed N] [--bench-out FILE]
//                        [--stats-out FILE] [--trace-out FILE]
//
// `sweep` runs a fixed list of Platform32/Platform64 scenarios across a
// worker-thread pool (each simulation is single-threaded and owns all its
// state; only independent simulations run concurrently), so stdout is
// byte-identical for any -j. Host wall-clock goes to stderr; --bench-out
// additionally records substrate primitive timings and sweep throughput.
//
// `faults` sweeps a fixed fault matrix: one seeded fault per site
// (storage, icap, dma, bus, readback) on both platforms, recovered through
// the ModuleManager's retry/fallback/scrub machinery, reporting detection
// latency and recovery outcome per scenario (docs/FAULTS.md). Output is a
// pure function of --seed, so identical invocations are byte-identical.
// run/reconfig also accept --fault-spec <site:trigger:seed> (repeatable)
// to arm individual faults.
//
// `chaos` runs the deterministic device-failure matrix over the
// health-tracking fleet (docs/FLEET_HEALTH.md): seeded fail-stop and
// brownout scenarios, each in three arms (fault-free baseline, faults with
// the HealthTracker, faults without it), reporting goodput retained and
// checking per-scenario expectations (quarantine, readmission, typed
// no-healthy-device failures). Output is a pure function of --seed at any
// -j; --bench-out records BENCH_chaos.json.
//
// `serve` drives the request-serving layer (docs/SERVING.md): closed-loop
// seeded workloads through a TaskServer with admission control, deadline
// watchdogs, per-module circuit breakers and graceful degradation to the
// software kernels. Without --workload it runs a fixed self-checking
// scenario matrix (including stuck-fault scenarios that must watchdog,
// open the breaker, degrade, and recover through a half-open probe) across
// the same worker pool as `sweep`; with --workload it runs one named
// workload on one platform. Output is a pure function of --seed.
// --slo metric:target[@short/long][:burn=X] (repeatable) declares service
// objectives checked by a multi-window burn-rate engine; --incident-dir
// DIR (single-workload mode only) arms a flight recorder that snapshots
// the recent trace window and serving state on watchdog abort, breaker
// open, recovery give-up or SLO burn (docs/OBSERVABILITY.md).
//
// Observability (run/reconfig):
//   --trace-out FILE      record spans and write a trace
//   --trace-format chrome|text   (default chrome: open in Perfetto)
//   --stats-out FILE      dump the whole stat registry
//   --stats-format json|csv      (default json)
//   --log-level err|warn|info|trace   component log to stderr
//
// Tasks: jenkins, sha1, patmatch, brightness, blend, fade, loopback.
// Every run executes both the software baseline and the hardware version
// and cross-checks them, printing simulated times and the speedup.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <thread>

#include "apps/drivers.hpp"
#include "apps/golden.hpp"
#include "apps/memio.hpp"
#include "apps/sw_kernels.hpp"
#include "fabric/config_memory.hpp"
#include "fault/fault.hpp"
#include "mem/sparse_memory.hpp"
#include "report/table.hpp"
#include "rtr/manager.hpp"
#include "rtr/platform.hpp"
#include "rtr/platform_dual.hpp"
#include "rtr/readback.hpp"
#include "serve/fleet/fleet.hpp"
#include "serve/server.hpp"
#include "sim/event_queue.hpp"
#include "sim/parse.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "trace/flight_recorder.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace rtr;
using bus::Addr;

struct Args {
  std::string command;
  int system = 32;
  std::string task = "jenkins";
  std::uint32_t bytes = 4096;
  int img_w = 128;
  int img_h = 96;
  bool dma = false;
  bool cache = false;
  bool dual = false;
  std::string trace_out;
  std::string trace_format = "chrome";
  std::string stats_out;
  std::string stats_format = "json";
  std::string log_level;  // empty: logging off
  int jobs = 0;           // sweep worker threads; 0 = hardware concurrency
  bool smoke = false;     // sweep/faults: small scenario subset (CI)
  bool plan_cache = true;  // serve: memoize/prefetch reconfiguration plans
  std::string bench_out;  // sweep/serve: benchmark JSON
  std::vector<std::string> fault_specs;  // run/reconfig/serve: --fault-spec
  std::uint64_t fault_seed = 1;          // faults/serve: --seed
  std::string workload;                  // serve: named workload (single mode)
  int repair_at = -1;                    // serve: repair_all after N requests
  std::vector<serve::SloSpec> slos;      // serve: --slo declared objectives
  std::string incident_dir;              // serve: flight-recorder snapshots
  int devices = 8;                       // fleet: simulated device count
  std::vector<int> mix = {64, 32};       // fleet: device systems, cycled
  std::string mix_text = "64:32";        // fleet: --mix as given (for output)
  int steal_threshold = 4;               // fleet: 0 disables work stealing
  bool affinity = true;                  // fleet: --no-affinity for A/B
  int requests = 2000;                   // fleet: arrival stream length
  int zipf_skew = 1;                     // fleet: behaviour popularity skew
  long long arrival_us = 800;            // fleet: mean interarrival gap
  int areas = 1;  // serve/fleet: co-resident dynamic areas per device
  int max_batch = 1;  // serve/fleet/chaos: swap-aware batching (1 = off)
  long long batch_slack_us = 20000;  // batch admission slack budget
};

int usage() {
  std::fprintf(stderr,
               "usage: rtrsim_cli <topology|resources|run|reconfig|sweep|"
               "faults|serve|fleet|chaos> "
               "[--system 32|64|dual] [--task NAME] [--bytes N] "
               "[--image WxH] [--dma] [--cache]\n"
               "       [--trace-out FILE] [--trace-format chrome|text]\n"
               "       [--stats-out FILE] [--stats-format json|csv]\n"
               "       [--log-level err|warn|info|trace]\n"
               "       [-j N|--jobs N] [--smoke] [--bench-out FILE]\n"
               "       [--fault-spec site:trigger:seed]... [--seed N]\n"
               "       [--workload NAME] [--repair-at N] [--no-plan-cache]\n"
               "       [--slo metric:target[@S/L][:burn=X]]... "
               "[--incident-dir DIR]\n"
               "       [--devices N] [--mix 64:32] [--requests N] "
               "[--arrival-us N]\n"
               "       [--zipf-skew N] [--steal-threshold N] "
               "[--no-affinity] [--areas N]\n"
               "       [--max-batch N] [--batch-slack US]\n"
               "tasks: jenkins sha1 patmatch brightness blend fade loopback\n"
               "workloads: mixed hash image burst steady heavy "
               "open-steady open-bursty open-diurnal\n"
               "fault sites: storage icap dma bus readback fail_stop "
               "brownout; triggers: once@N every@N stuck@N rand\n"
               "fault spec: site:trigger:seed[:device] (device scopes the "
               "fault to one fleet shard)\n"
               "slo metrics: deadline hw (e.g. deadline:0.99@10ms/50ms:burn=2)"
               "\n");
  return 2;
}

/// Strict decimal parse (sim/parse.hpp: whole-string, overflow-checked --
/// atoi-style silent zero-on-garbage is how "--bytes 4k" becomes a 0-byte
/// run). Null-tolerant so `value()` can feed it directly.
bool parse_i64(const char* s, long long* out) {
  std::int64_t v = 0;
  if (s == nullptr || !sim::parse_i64(s, &v)) return false;
  *out = v;
  return true;
}

/// Parse the command line. Every rejection names the failing flag on
/// stderr (the caller follows up with the usage text), so "--bytes 4k"
/// fails as "invalid value '4k' for '--bytes'", not as a silent exit 2.
bool parse(int argc, char** argv, Args& a) {
  if (argc < 2) {
    std::fprintf(stderr, "rtrsim_cli: missing command\n");
    return false;
  }
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string opt = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto bad = [&](const char* v) {
      if (v == nullptr) {
        std::fprintf(stderr, "rtrsim_cli: missing value for '%s'\n",
                     opt.c_str());
      } else {
        std::fprintf(stderr, "rtrsim_cli: invalid value '%s' for '%s'\n", v,
                     opt.c_str());
      }
      return false;
    };
    if (opt == "--system") {
      const char* v = value();
      if (!v) return bad(v);
      if (std::string(v) == "dual") {
        a.dual = true;
        a.system = 64;
      } else {
        long long n = 0;
        if (!parse_i64(v, &n) || (n != 32 && n != 64)) return bad(v);
        a.system = static_cast<int>(n);
      }
    } else if (opt == "--task") {
      const char* v = value();
      if (!v) return bad(v);
      a.task = v;
    } else if (opt == "--bytes") {
      const char* v = value();
      long long n = 0;
      if (!parse_i64(v, &n) || n < 0 || n > UINT32_MAX) return bad(v);
      a.bytes = static_cast<std::uint32_t>(n);
    } else if (opt == "--image") {
      const char* v = value();
      if (!v || !sim::parse_dims(v, &a.img_w, &a.img_h)) return bad(v);
    } else if (opt == "--dma") {
      a.dma = true;
    } else if (opt == "--cache") {
      a.cache = true;
    } else if (opt == "--trace-out") {
      const char* v = value();
      if (!v) return bad(v);
      a.trace_out = v;
    } else if (opt == "--trace-format") {
      const char* v = value();
      if (!v) return bad(v);
      a.trace_format = v;
      if (a.trace_format != "chrome" && a.trace_format != "text") {
        return bad(v);
      }
    } else if (opt == "--stats-out") {
      const char* v = value();
      if (!v) return bad(v);
      a.stats_out = v;
    } else if (opt == "--stats-format") {
      const char* v = value();
      if (!v) return bad(v);
      a.stats_format = v;
      if (a.stats_format != "json" && a.stats_format != "csv") return bad(v);
    } else if (opt == "-j" || opt == "--jobs") {
      const char* v = value();
      long long n = 0;
      if (!parse_i64(v, &n) || n < 0 || n > 1024) return bad(v);
      a.jobs = static_cast<int>(n);
    } else if (opt == "--smoke") {
      a.smoke = true;
    } else if (opt == "--no-plan-cache") {
      a.plan_cache = false;
    } else if (opt == "--fault-spec") {
      const char* v = value();
      if (!v) return bad(v);
      a.fault_specs.emplace_back(v);
    } else if (opt == "--seed") {
      const char* v = value();
      long long n = 0;
      if (!parse_i64(v, &n) || n < 0) return bad(v);
      a.fault_seed = static_cast<std::uint64_t>(n);
    } else if (opt == "--bench-out") {
      const char* v = value();
      if (!v) return bad(v);
      a.bench_out = v;
    } else if (opt == "--workload") {
      const char* v = value();
      if (!v || (serve::workload_by_name(v) == nullptr &&
                 serve::open_workload_by_name(v) == nullptr)) {
        return bad(v);
      }
      a.workload = v;
    } else if (opt == "--repair-at") {
      const char* v = value();
      long long n = 0;
      if (!parse_i64(v, &n) || n < 0) return bad(v);
      a.repair_at = static_cast<int>(n);
    } else if (opt == "--slo") {
      const char* v = value();
      serve::SloSpec spec;
      if (!v || !serve::SloSpec::parse(v, &spec)) return bad(v);
      a.slos.push_back(spec);
    } else if (opt == "--incident-dir") {
      const char* v = value();
      if (!v) return bad(v);
      a.incident_dir = v;
    } else if (opt == "--devices") {
      const char* v = value();
      long long n = 0;
      if (!parse_i64(v, &n) || n < 1 || n > 256) return bad(v);
      a.devices = static_cast<int>(n);
    } else if (opt == "--mix") {
      const char* v = value();
      if (!v) return bad(v);
      std::vector<int> mix;
      const std::string s = v;
      for (std::size_t i = 0; i <= s.size();) {
        std::size_t j = s.find_first_of(":,", i);
        if (j == std::string::npos) j = s.size();
        long long n = 0;
        if (!parse_i64(s.substr(i, j - i).c_str(), &n) ||
            (n != 32 && n != 64)) {
          return bad(v);
        }
        mix.push_back(static_cast<int>(n));
        i = j + 1;
      }
      a.mix = mix;
      a.mix_text = s;
    } else if (opt == "--steal-threshold") {
      const char* v = value();
      long long n = 0;
      if (!parse_i64(v, &n) || n < 0 || n > 1024) return bad(v);
      a.steal_threshold = static_cast<int>(n);
    } else if (opt == "--no-affinity") {
      a.affinity = false;
    } else if (opt == "--areas") {
      const char* v = value();
      long long n = 0;
      if (!parse_i64(v, &n) || n < 1 ||
          n > fabric::DynamicRegion::kMaxAreasXc2vp30) {
        return bad(v);
      }
      a.areas = static_cast<int>(n);
    } else if (opt == "--max-batch") {
      const char* v = value();
      long long n = 0;
      if (!parse_i64(v, &n) || n < 1 || n > 64) return bad(v);
      a.max_batch = static_cast<int>(n);
    } else if (opt == "--batch-slack") {
      const char* v = value();
      long long n = 0;
      if (!parse_i64(v, &n) || n < 0 || n > 10000000) return bad(v);
      a.batch_slack_us = n;
    } else if (opt == "--requests") {
      const char* v = value();
      long long n = 0;
      if (!parse_i64(v, &n) || n < 1 || n > 1000000) return bad(v);
      a.requests = static_cast<int>(n);
    } else if (opt == "--zipf-skew") {
      const char* v = value();
      long long n = 0;
      if (!parse_i64(v, &n) || n < 0 || n > 8) return bad(v);
      a.zipf_skew = static_cast<int>(n);
    } else if (opt == "--arrival-us") {
      const char* v = value();
      long long n = 0;
      if (!parse_i64(v, &n) || n < 1 || n > 10000000) return bad(v);
      a.arrival_us = n;
    } else if (opt == "--log-level") {
      const char* v = value();
      if (!v) return bad(v);
      a.log_level = v;
      if (a.log_level != "err" && a.log_level != "warn" &&
          a.log_level != "info" && a.log_level != "trace") {
        return bad(v);
      }
    } else {
      std::fprintf(stderr, "rtrsim_cli: unknown option '%s'\n", opt.c_str());
      return false;
    }
  }
  return true;
}

/// Apply --log-level: install the stderr sink at the requested threshold.
void apply_log_level(sim::Simulation& sim, const Args& a) {
  if (a.log_level.empty()) return;
  sim::LogLevel lvl = sim::LogLevel::kWarn;
  if (a.log_level == "err") lvl = sim::LogLevel::kError;
  else if (a.log_level == "warn") lvl = sim::LogLevel::kWarn;
  else if (a.log_level == "info") lvl = sim::LogLevel::kInfo;
  else if (a.log_level == "trace") lvl = sim::LogLevel::kTrace;
  sim.logger().set_level(lvl);
  sim.logger().set_sink(sim::Logger::stderr_sink());
}

/// Write --trace-out / --stats-out files. Returns 0, or 1 when a file
/// cannot be opened.
int dump_observability(sim::Simulation& sim, const trace::Tracer& tracer,
                       const Args& a) {
  if (!a.trace_out.empty()) {
    std::ofstream f(a.trace_out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", a.trace_out.c_str());
      return 1;
    }
    if (a.trace_format == "text") {
      tracer.export_timeline(f);
    } else {
      tracer.export_chrome(f);
    }
  }
  if (!a.stats_out.empty()) {
    std::ofstream f(a.stats_out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", a.stats_out.c_str());
      return 1;
    }
    if (a.stats_format == "csv") {
      sim.stats().export_csv(f);
    } else {
      sim.stats().export_json(f);
    }
  }
  return 0;
}

/// Parse every --fault-spec into `plan`. False (with a stderr note) on a
/// malformed spec.
bool build_fault_plan(const Args& a, fault::FaultPlan* plan) {
  for (const std::string& s : a.fault_specs) {
    fault::FaultSpec spec;
    if (!fault::FaultSpec::parse(s, &spec)) {
      std::fprintf(stderr,
                   "bad --fault-spec '%s' (want site:trigger:seed[:device], "
                   "e.g. icap:once@20000:1)\n",
                   s.c_str());
      return false;
    }
    plan->add(spec);
  }
  return true;
}

/// Deterministic one-line injection summary for run/reconfig with faults
/// armed (simulated quantities only).
void print_fault_summary(fault::FaultInjector* fi) {
  if (fi == nullptr) return;
  std::printf("faults: injected=%lld (storage=%lld icap=%lld dma=%lld "
              "bus=%lld readback=%lld fail_stop=%lld brownout=%lld)\n",
              static_cast<long long>(fi->injected_total()),
              static_cast<long long>(fi->injected(fault::Site::kConfigStorage)),
              static_cast<long long>(fi->injected(fault::Site::kIcap)),
              static_cast<long long>(fi->injected(fault::Site::kDma)),
              static_cast<long long>(fi->injected(fault::Site::kBus)),
              static_cast<long long>(fi->injected(fault::Site::kReadback)),
              static_cast<long long>(fi->injected(fault::Site::kFailStop)),
              static_cast<long long>(fi->injected(fault::Site::kBrownout)));
}

hw::BehaviorId behavior_of(const std::string& task) {
  if (task == "jenkins") return hw::kJenkinsHash;
  if (task == "sha1") return hw::kSha1;
  if (task == "patmatch") return hw::kPatternMatcher;
  if (task == "brightness") return hw::kBrightness;
  if (task == "blend") return hw::kBlendAdd;
  if (task == "fade") return hw::kFade;
  if (task == "loopback") return hw::kLoopback;
  RTR_CHECK(false, "unknown task name");
  __builtin_unreachable();
}

/// Outcome of one task execution (software baseline + hardware version),
/// print-free so both the interactive `run` command and the parallel sweep
/// driver share it. All fields are simulated quantities and therefore
/// deterministic for a given (platform, task, parameters).
struct TaskOutcome {
  sim::SimTime sw_time, hw_time;
  bool match = true;
  // patmatch detail (for the run command's report line)
  int pm_count = 0, pm_row = 0, pm_col = 0;
};

/// Stage deterministic inputs, run the software and hardware versions of
/// `a.task` and cross-check them. The module must already be loaded.
/// Handles every task except loopback (which has no sw/hw split).
template <typename Platform>
TaskOutcome exec_task(const Args& a, Platform& p) {
  const Addr in = Platform::kConfigStaging - 0x0100'0000;
  const Addr in_b = Platform::kConfigStaging - 0x00C0'0000;
  const Addr out = Platform::kConfigStaging - 0x0080'0000;
  const Addr scratch = Platform::kConfigStaging - 0x0040'0000;

  sim::Rng rng{2026};
  TaskOutcome r;

  if (a.task == "jenkins" || a.task == "sha1") {
    std::vector<std::uint8_t> msg(a.bytes);
    for (auto& b : msg) b = rng.next_u8();
    apps::store_bytes(p.cpu().plb(), in, msg);
    auto t0 = p.kernel().now();
    if (a.task == "jenkins") {
      const auto sw = apps::sw_jenkins(p.kernel(), in, a.bytes);
      r.sw_time = p.kernel().now() - t0;
      t0 = p.kernel().now();
      const auto hw =
          apps::hw_jenkins_pio(p.kernel(), Platform::dock_data(), in, a.bytes);
      r.hw_time = p.kernel().now() - t0;
      r.match = sw == hw && sw == apps::jenkins_hash(msg);
    } else {
      const auto sw = apps::sw_sha1(p.kernel(), in, a.bytes, scratch);
      r.sw_time = p.kernel().now() - t0;
      t0 = p.kernel().now();
      const auto hw =
          apps::hw_sha1_pio(p.kernel(), Platform::dock_data(), in, a.bytes);
      r.hw_time = p.kernel().now() - t0;
      r.match = sw == hw && sw == apps::sha1(msg);
    }
  } else if (a.task == "patmatch") {
    apps::BinaryImage img = apps::BinaryImage::make(a.img_w, a.img_h);
    for (auto& w : img.words) w = rng.next_u32() & rng.next_u32();
    apps::Pattern8x8 pat;
    for (auto& row : pat) row = rng.next_u8();
    apps::store_bytes(p.cpu().plb(), in, apps::to_bytes(img));
    std::vector<std::uint8_t> pb(64);
    for (int i = 0; i < 64; ++i) {
      pb[static_cast<std::size_t>(i)] =
          (pat[static_cast<std::size_t>(i / 8)] >> (i % 8)) & 1;
    }
    apps::store_bytes(p.cpu().plb(), in_b, pb);
    auto t0 = p.kernel().now();
    const auto sw = apps::sw_pattern_match(p.kernel(), in, a.img_w, a.img_h, in_b);
    r.sw_time = p.kernel().now() - t0;
    t0 = p.kernel().now();
    const auto hw = apps::hw_pattern_match_pio(p.kernel(), Platform::dock_data(),
                                               in, a.img_w, a.img_h, in_b);
    r.hw_time = p.kernel().now() - t0;
    r.match = sw.best_count == hw.best_count && sw.best_row == hw.best_row &&
              sw.best_col == hw.best_col;
    r.pm_count = hw.best_count;
    r.pm_row = hw.best_row;
    r.pm_col = hw.best_col;
  } else if (a.task == "brightness" || a.task == "blend" || a.task == "fade") {
    const int n = a.img_w * a.img_h;
    apps::GrayImage ia = apps::GrayImage::make(a.img_w, a.img_h);
    apps::GrayImage ib = apps::GrayImage::make(a.img_w, a.img_h);
    for (auto& px : ia.pixels) px = rng.next_u8();
    for (auto& px : ib.pixels) px = rng.next_u8();
    apps::store_bytes(p.cpu().plb(), in, ia.pixels);
    apps::store_bytes(p.cpu().plb(), in_b, ib.pixels);

    std::vector<std::uint8_t> want;
    auto t0 = p.kernel().now();
    if (a.task == "brightness") {
      apps::sw_brightness(p.kernel(), in, out, n, 60);
      want = apps::brightness(ia, 60).pixels;
    } else if (a.task == "blend") {
      apps::sw_blend(p.kernel(), in, in_b, out, n);
      want = apps::blend_add(ia, ib).pixels;
    } else {
      apps::sw_fade(p.kernel(), in, in_b, out, n, 160);
      want = apps::fade(ia, ib, 160).pixels;
    }
    r.sw_time = p.kernel().now() - t0;
    r.match = apps::fetch_bytes(p.cpu().plb(), out, want.size()) == want;

    t0 = p.kernel().now();
    if constexpr (std::is_same_v<Platform, Platform64>) {
      if (a.dma) {
        if (a.task == "brightness") {
          apps::hw_brightness_dma(p, in, out, n, 60);
        } else if (a.task == "blend") {
          apps::hw_blend_dma(p, in, in_b, scratch, out, n);
        } else {
          apps::hw_fade_dma(p, in, in_b, scratch, out, n, 160);
        }
        r.hw_time = p.kernel().now() - t0;
        r.match = r.match &&
                  apps::fetch_bytes(p.cpu().plb(), out, want.size()) == want;
      }
    }
    if (r.hw_time == sim::SimTime::zero()) {
      if (a.task == "brightness") {
        apps::hw_brightness_pio(p.kernel(), Platform::dock_data(), in, out, n, 60);
      } else if (a.task == "blend") {
        apps::hw_blend_pio(p.kernel(), Platform::dock_data(), in, in_b, out, n);
      } else {
        apps::hw_fade_pio(p.kernel(), Platform::dock_data(), in, in_b, out, n, 160);
      }
      r.hw_time = p.kernel().now() - t0;
      r.match = r.match &&
                apps::fetch_bytes(p.cpu().plb(), out, want.size()) == want;
    }
  }
  return r;
}

template <typename Platform>
int run_task_inner(const Args& a, Platform& p) {
  const Addr in = Platform::kConfigStaging - 0x0100'0000;

  ReconfigStats load;
  if constexpr (std::is_same_v<Platform, Platform64>) {
    load = a.dma ? p.load_module_dma(behavior_of(a.task))
                 : p.load_module(behavior_of(a.task));
  } else {
    load = p.load_module(behavior_of(a.task));
  }
  if (!load.ok) {
    std::printf("load failed: %s\n", load.error.c_str());
    return 1;
  }
  std::printf("system %d, task %s: module loaded in %s (%lld KB)\n", a.system,
              a.task.c_str(), load.duration().to_string().c_str(),
              static_cast<long long>(load.config_bytes / 1024));

  if (a.task == "loopback") {
    sim::Rng rng{2026};
    std::vector<std::uint8_t> data(a.bytes);
    for (auto& b : data) b = rng.next_u8();
    apps::store_bytes(p.cpu().plb(), in, data);
    const sim::SimTime t = apps::pio_write_seq(
        p.kernel(), in, Platform::dock_data(), static_cast<int>(a.bytes / 4));
    std::printf("%u bytes written to the dock in %s\n", a.bytes,
                t.to_string().c_str());
    return 0;
  }

  const TaskOutcome r = exec_task(a, p);
  if (a.task == "patmatch") {
    std::printf("best match %d/64 at (%d,%d)\n", r.pm_count, r.pm_row,
                r.pm_col);
  }
  std::printf("software: %s\nhardware: %s%s\nspeedup : %.2fx\nresults : %s\n",
              r.sw_time.to_string().c_str(), r.hw_time.to_string().c_str(),
              a.dma ? " (DMA)" : " (PIO)",
              static_cast<double>(r.sw_time.ps()) /
                  static_cast<double>(r.hw_time.ps()),
              r.match ? "sw == hw == golden" : "MISMATCH");
  return r.match ? 0 : 1;
}

/// Build the platform with observability wired in, run the task, then dump
/// the requested trace/stats files (also on failure: a failed run's trace is
/// exactly when you want one).
template <typename Platform>
int run_task(const Args& a) {
  trace::Tracer tracer;
  tracer.enable(!a.trace_out.empty());
  PlatformOptions opts;
  opts.enable_dcache = a.cache;
  opts.tracer = &tracer;
  if (!build_fault_plan(a, &opts.fault_plan)) return 2;
  Platform p{opts};
  apply_log_level(p.sim(), a);
  const int rc = run_task_inner(a, p);
  if (!a.fault_specs.empty()) print_fault_summary(p.faults());
  const int dump_rc = dump_observability(p.sim(), tracer, a);
  return rc != 0 ? rc : dump_rc;
}

// ---------------------------------------------------------------------------
// sweep: parallel scenario fan-out with deterministic output.
// ---------------------------------------------------------------------------

struct Scenario {
  const char* name;
  int system;  // 32 or 64
  const char* task;
  bool dma;  // Platform64 only: DMA configuration load + DMA data movement
  std::uint32_t bytes;
  int img_w, img_h;
};

// Fixed scenario list: every task on both platforms (sha1 does not fit the
// 32-bit device's dock, so it only appears on 64), plus the DMA variants.
constexpr Scenario kSweepScenarios[] = {
    {"p32-jenkins", 32, "jenkins", false, 16384, 0, 0},
    {"p32-patmatch", 32, "patmatch", false, 0, 96, 64},
    {"p32-brightness", 32, "brightness", false, 0, 160, 120},
    {"p32-blend", 32, "blend", false, 0, 160, 120},
    {"p32-fade", 32, "fade", false, 0, 160, 120},
    {"p64-jenkins", 64, "jenkins", false, 16384, 0, 0},
    {"p64-sha1", 64, "sha1", false, 16384, 0, 0},
    {"p64-patmatch", 64, "patmatch", false, 0, 96, 64},
    {"p64-brightness", 64, "brightness", false, 0, 160, 120},
    {"p64-blend", 64, "blend", false, 0, 160, 120},
    {"p64-fade", 64, "fade", false, 0, 160, 120},
    {"p64-brightness-dma", 64, "brightness", true, 0, 160, 120},
    {"p64-blend-dma", 64, "blend", true, 0, 160, 120},
    {"p64-fade-dma", 64, "fade", true, 0, 160, 120},
    {"p64-sha1-dma", 64, "sha1", true, 16384, 0, 0},
};

/// CI subset: one 32-bit scenario, one plain 64-bit, one DMA.
constexpr std::size_t kSmokeIndices[] = {0, 6, 13};

struct SweepOutcome {
  std::string line;  // rendered report: simulated quantities only
  bool ok = false;
  long long plb_txns = 0;
  long long plb_beats = 0;
  long long opb_txns = 0;
};

/// Run one scenario on a freshly built platform. Everything this returns is
/// a function of the scenario alone (fixed input seed, single-threaded
/// simulation), so results are independent of worker scheduling.
template <typename Platform>
SweepOutcome sweep_one(const Scenario& sc) {
  Args a;
  a.system = sc.system;
  a.task = sc.task;
  a.dma = sc.dma;
  a.bytes = sc.bytes;
  if (sc.img_w > 0) {
    a.img_w = sc.img_w;
    a.img_h = sc.img_h;
  }

  SweepOutcome o;
  Platform p;
  ReconfigStats load;
  if constexpr (std::is_same_v<Platform, Platform64>) {
    load = sc.dma ? p.load_module_dma(behavior_of(a.task))
                  : p.load_module(behavior_of(a.task));
  } else {
    load = p.load_module(behavior_of(a.task));
  }
  if (!load.ok) {
    o.line = std::string(sc.name) + ": load failed: " + load.error;
    return o;
  }
  const TaskOutcome r = exec_task(a, p);
  o.plb_txns = p.sim().stats().counter("PLB.transactions").value();
  o.plb_beats = p.sim().stats().counter("PLB.beats").value();
  o.opb_txns = p.sim().stats().counter("OPB.transactions").value();
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-18s load=%-12s sw=%-12s hw=%-12s speedup=%6.2fx "
                "plb.txns=%-7lld %s",
                sc.name, load.duration().to_string().c_str(),
                r.sw_time.to_string().c_str(), r.hw_time.to_string().c_str(),
                static_cast<double>(r.sw_time.ps()) /
                    static_cast<double>(r.hw_time.ps()),
                o.plb_txns, r.match ? "ok" : "MISMATCH");
  o.line = buf;
  o.ok = r.match;
  return o;
}

/// Best-of-`reps` host time of `body`, in nanoseconds. A minimum over
/// repetitions is the standard way to suppress scheduler noise when
/// recording a baseline.
template <typename F>
double best_ns(F&& body, int reps = 7) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  return best;
}

/// Substrate primitive timings, mirroring bench/microbench.cpp bodies (and
/// keyed by the same names) so the committed baseline and the google-
/// benchmark numbers are directly comparable.
struct PrimitiveTimes {
  double schedule_run_ns = 0;
  double same_time_batch_ns = 0;
  double block_copy_ns = 0;
  double incremental_diff_ns = 0;
};

PrimitiveTimes measure_primitives() {
  PrimitiveTimes t;
  int sink = 0;
  t.schedule_run_ns = best_ns([&] {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(sim::SimTime::from_ns(i), [&](sim::SimTime) { ++sink; });
    }
    q.drain();
  });
  t.same_time_batch_ns = best_ns([&] {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i) {
      q.schedule(sim::SimTime::from_us(1), [&](sim::SimTime) { ++sink; });
    }
    q.drain();
  });
  {
    mem::SparseMemory m{1u << 20};
    std::vector<std::uint8_t> in(64 * 1024, 0x5A);
    std::vector<std::uint8_t> out(in.size());
    t.block_copy_ns = best_ns([&] {
      m.write_block(1000, in);
      m.read_block(1000, out);
    });
    sink += out[0];
  }
  {
    fabric::ConfigMemory a{fabric::Device::xc2vp30()};
    fabric::ConfigMemory b{fabric::Device::xc2vp30()};
    const std::uint32_t patch[4] = {1, 2, 3, 4};
    for (int maj = 0; maj < 4; ++maj) {
      b.write_words(fabric::FrameAddress{fabric::ColumnType::kClb, maj, 0}, 2,
                    patch);
    }
    t.incremental_diff_ns =
        best_ns([&] { sink += fabric::ConfigMemory::diff_frames(a, b); });
  }
  // Defeat whole-benchmark elision without google-benchmark's helpers.
  asm volatile("" : : "r"(sink) : "memory");
  return t;
}

bool write_bench_json(const std::string& path, const PrimitiveTimes& t,
                      std::size_t scenarios, int jobs, double wall_ms) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  char buf[1024];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"schema\": \"rtrsim-substrate-bench-v1\",\n"
                "  \"primitives_ns_per_op\": {\n"
                "    \"BM_EventQueueScheduleRun\": %.1f,\n"
                "    \"BM_EventQueueSameTimeBatch\": %.1f,\n"
                "    \"BM_SparseMemoryBlockCopy\": %.1f,\n"
                "    \"BM_ConfigMemoryIncrementalDiff\": %.1f\n"
                "  },\n"
                "  \"sweep\": {\n"
                "    \"scenarios\": %zu,\n"
                "    \"jobs\": %d,\n"
                "    \"wall_ms\": %.1f,\n"
                "    \"scenarios_per_sec\": %.2f\n"
                "  }\n"
                "}\n",
                t.schedule_run_ns, t.same_time_batch_ns, t.block_copy_ns,
                t.incremental_diff_ns, scenarios, jobs, wall_ms,
                wall_ms > 0 ? 1000.0 * static_cast<double>(scenarios) / wall_ms
                            : 0.0);
  f << buf;
  return static_cast<bool>(f);
}

int sweep(const Args& a) {
  std::vector<Scenario> list;
  if (a.smoke) {
    for (const std::size_t i : kSmokeIndices) list.push_back(kSweepScenarios[i]);
  } else {
    list.assign(std::begin(kSweepScenarios), std::end(kSweepScenarios));
  }

  const unsigned hc = std::thread::hardware_concurrency();
  const int jobs =
      a.jobs > 0 ? a.jobs : static_cast<int>(hc > 0 ? hc : 1);

  std::vector<SweepOutcome> results(list.size());
  std::atomic<std::size_t> next{0};
  const auto wall0 = std::chrono::steady_clock::now();
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= list.size()) return;
      results[i] = list[i].system == 32 ? sweep_one<Platform32>(list[i])
                                        : sweep_one<Platform64>(list[i]);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs) - 1);
  for (int j = 1; j < jobs; ++j) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall0)
                             .count();

  // Deterministic report: scenario order, simulated quantities only.
  // Aggregation goes through a StatRegistry so the sweep summary uses the
  // same machinery (and formatting) as per-simulation stats.
  sim::StatRegistry agg;
  bool all_ok = true;
  for (const SweepOutcome& o : results) {
    std::printf("%s\n", o.line.c_str());
    all_ok = all_ok && o.ok;
    agg.counter("sweep.scenarios").add(1);
    if (!o.ok) agg.counter("sweep.mismatches").add(1);
    agg.counter("sweep.plb.transactions").add(o.plb_txns);
    agg.counter("sweep.plb.beats").add(o.plb_beats);
    agg.counter("sweep.opb.transactions").add(o.opb_txns);
  }
  agg.counter("sweep.mismatches").add(0);  // present even when all pass
  std::printf("aggregate:\n");
  agg.print(std::cout);

  // Host-side timing is non-deterministic by nature: stderr only.
  std::fprintf(stderr, "sweep: %zu scenarios, %d jobs, %.1f ms wall\n",
               list.size(), jobs, wall_ms);

  if (!a.bench_out.empty()) {
    const PrimitiveTimes t = measure_primitives();
    if (!write_bench_json(a.bench_out, t, list.size(), jobs, wall_ms)) {
      return 1;
    }
  }
  return all_ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// faults: deterministic fault matrix with recovery reporting.
// ---------------------------------------------------------------------------

struct FaultScenario {
  const char* name;
  int system;                // 32 or 64
  const char* task;          // module the manager ensures
  const char* site_trigger;  // "site:trigger"; ":<seed>" appended at runtime
  std::int64_t word;         // storage only: pinned staged word (-1 = seeded)
  bool dma;                  // recover through DMA loads (Platform64)
  bool verify;               // RecoveryPolicy::verify_after_load
  const char* second_task;   // non-empty: second (differential-path) ensure
  const char* expect;        // clean | tolerated | recovered | failed
};

// One seeded fault per site on both platforms. Trigger indexes are placed
// inside the first faulted operation's opportunity stream (a complete
// Platform32 load streams ~33k ICAP words and ~130k bus beats; a DMA load
// moves ~16k beats; a region readback pops tens of thousands of FDRO
// words). The sticky ICAP scenario is expected to exhaust retries and
// fail; the diff scenario faults the differential load and must fall back
// to the complete configuration.
constexpr FaultScenario kFaultScenarios[] = {
    {"p32-storage", 32, "brightness", "storage:once@0", 5000, false, true, "",
     "recovered"},
    {"p32-icap", 32, "brightness", "icap:once@20000", -1, false, true, "",
     "recovered"},
    {"p32-bus", 32, "brightness", "bus:once@60000", -1, false, true, "",
     "recovered"},
    {"p32-readback", 32, "brightness", "readback:once@0", -1, false, true,
     "", "recovered"},
    {"p32-icap-sticky", 32, "brightness", "icap:stuck@15000", -1, false, true,
     "", "failed"},
    {"p32-diff-fallback", 32, "brightness", "icap:once@33500", -1, false,
     false, "fade", "recovered"},
    {"p64-icap", 64, "jenkins", "icap:once@20000", -1, false, true, "",
     "recovered"},
    {"p64-dma", 64, "jenkins", "dma:once@1500", -1, true, true, "",
     "recovered"},
    {"p64-bus", 64, "jenkins", "bus:once@60000", -1, false, true, "",
     "recovered"},
    {"p64-readback", 64, "jenkins", "readback:once@0", -1, false, true, "",
     "recovered"},
};

/// CI subset: every injection site once across both platforms.
constexpr std::size_t kFaultSmokeIndices[] = {0, 1, 2, 7, 9};

/// Run one fault scenario: arm the spec, drive the manager, classify the
/// end state. Everything printed is simulated, so output is a pure
/// function of (scenario, seed).
template <typename Platform>
std::string fault_one(const FaultScenario& sc, std::uint64_t seed, bool* ok) {
  fault::FaultSpec spec;
  RTR_CHECK(fault::FaultSpec::parse(
                std::string(sc.site_trigger) + ":" + std::to_string(seed),
                &spec),
            "bad built-in fault spec");
  if (sc.word >= 0) {
    spec.word = sc.word;
    spec.mask = 0x0100;
  }
  if (spec.site == fault::Site::kReadback) {
    // The verifier only hashes the region's row window of each frame; aim
    // the fault at the middle of that window in the 10th covered frame so
    // the flip is always observable.
    const fabric::DynamicRegion region =
        std::is_same_v<Platform, Platform64>
            ? fabric::DynamicRegion::xc2vp30_region()
            : fabric::DynamicRegion::xc2vp7_region();
    spec.n = 10u * static_cast<std::uint64_t>(
                       region.device().words_per_frame()) +
             static_cast<std::uint64_t>(region.first_word()) +
             static_cast<std::uint64_t>(region.word_count()) / 2;
  }
  const std::string text = spec.to_string();
  PlatformOptions opts;
  opts.fault_plan.add(spec);
  Platform p{opts};
  RecoveryPolicy pol;
  pol.verify_after_load = sc.verify;
  pol.use_dma = sc.dma;
  ModuleManager<Platform> mgr{p, pol};
  const int w = std::is_same_v<Platform, Platform64> ? 64 : 32;

  EnsureStats res = mgr.ensure(behavior_of(sc.task), w);
  if (sc.second_task[0] != '\0') {
    res = mgr.ensure(behavior_of(sc.second_task), w);
  }

  fault::FaultInjector* fi = p.faults();
  // The scenario is over: disarm everything so the final golden check
  // observes the fabric, not the fault model.
  fi->repair_all();
  const int target =
      behavior_of(sc.second_task[0] != '\0' ? sc.second_task : sc.task);
  const bool golden =
      res.ok && p.region().scan_signature(p.fabric_state()) == target &&
      readback_verify(p.kernel(), Platform::kIcapRange.base, p.region()).ok;

  const char* outcome = "failed";
  if (fi->injected_total() == 0) {
    outcome = "clean";
  } else if (!res.detected) {
    if (golden) outcome = "tolerated";
  } else if (golden) {
    outcome = "recovered";
  }
  *ok = std::string(outcome) == sc.expect;

  const std::string latency =
      res.detected && fi->injected_total() > 0
          ? (res.detected_at - fi->first_injection()).to_string()
          : "-";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-18s spec=%-22s inj=%-2lld det=%s lat=%-10s att=%d ret=%d "
                "scr=%d fb=%s outcome=%-9s expect=%-9s %s",
                sc.name, text.c_str(),
                static_cast<long long>(fi->injected_total()),
                res.detected ? "y" : "n", latency.c_str(), res.attempts,
                res.retries, res.scrubs, res.fell_back ? "y" : "n", outcome,
                sc.expect, *ok ? "ok" : "MISMATCH");
  return buf;
}

int faults_cmd(const Args& a) {
  std::vector<std::size_t> idx;
  if (a.smoke) {
    idx.assign(std::begin(kFaultSmokeIndices), std::end(kFaultSmokeIndices));
  } else {
    for (std::size_t i = 0; i < std::size(kFaultScenarios); ++i) {
      idx.push_back(i);
    }
  }
  std::printf("fault matrix: %zu scenarios, seed=%llu\n", idx.size(),
              static_cast<unsigned long long>(a.fault_seed));
  bool all_ok = true;
  for (const std::size_t i : idx) {
    const FaultScenario& sc = kFaultScenarios[i];
    bool ok = false;
    const std::string line = sc.system == 32
                                 ? fault_one<Platform32>(sc, a.fault_seed, &ok)
                                 : fault_one<Platform64>(sc, a.fault_seed, &ok);
    std::printf("%s\n", line.c_str());
    all_ok = all_ok && ok;
  }
  std::printf("%s\n", all_ok ? "all scenarios matched expectations"
                             : "EXPECTATION MISMATCH");
  return all_ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// serve: request-serving scenario matrix / single named workload.
// ---------------------------------------------------------------------------

struct ServeScenario {
  const char* name;
  int system;            // 32 or 64
  const char* workload;  // named WorkloadSpec
  const char* fault;     // "" = none; "site:trigger" (":<seed>" appended)
  bool dma;              // recover module loads through DMA (Platform64)
  int repair_at;         // FaultInjector::repair_all after N dispositions
  int budget_ms;         // watchdog budget; 0 = ServeOptions default
  // Self-check expectations: what this scenario MUST exhibit (and, for
  // clean scenarios, must not).
  bool expect_shed;
  bool expect_watchdog;
  bool expect_breaker_cycle;  // breaker opened AND a probe closed it again
  bool expect_degraded;
};

// Clean scenarios cover both platforms and every workload shape (including
// "burst", whose queue is smaller than its client population, and "hash"
// on the 32-bit system, where SHA-1 cannot be placed and is served by the
// software kernel for the whole run). The stuck-fault scenarios are the
// acceptance path of docs/SERVING.md: the watchdog must abort the hung
// load, the breaker must open, requests must degrade instead of hanging,
// and after field repair a half-open probe must restore hardware service.
// The stuck scenarios tighten the watchdog budget to just above one clean
// load on their platform (a clean p32 PIO load is ~24 ms, a p64 DMA load
// ~12 ms), so the stuck retry ladder is cut off on its second attempt.
constexpr ServeScenario kServeScenarios[] = {
    {"p32-mixed", 32, "mixed", "", false, -1, 0, false, false, false, false},
    {"p32-hash", 32, "hash", "", false, -1, 0, false, false, false, true},
    {"p32-burst", 32, "burst", "", false, -1, 0, true, false, false, false},
    {"p64-mixed", 64, "mixed", "", false, -1, 0, false, false, false, false},
    {"p64-image", 64, "image", "", false, -1, 0, false, false, false, false},
    {"p64-hash-dma", 64, "hash", "", true, -1, 0, false, false, false,
     false},
    {"p32-icap-stuck", 32, "steady", "icap:stuck@15000", false, 6, 40, false,
     true, true, true},
    {"p64-dma-stuck", 64, "steady", "dma:stuck@1500", true, 6, 20, false,
     true, true, true},
};

/// CI subset: one clean scenario per platform, shedding, both stuck faults.
constexpr std::size_t kServeSmokeIndices[] = {0, 2, 6, 7};

struct ServeScenarioOutcome {
  std::string line;
  bool ok = false;
  sim::StatRegistry stats;  // the scenario's whole registry, for merging
};

/// One scenario on a freshly built platform: a pure function of
/// (scenario, seed), independent of worker scheduling.
template <typename Platform>
ServeScenarioOutcome serve_scenario(const ServeScenario& sc,
                                    std::uint64_t seed, bool plan_cache,
                                    const std::vector<serve::SloSpec>& slos,
                                    int areas) {
  const serve::WorkloadSpec* w = serve::workload_by_name(sc.workload);
  RTR_CHECK(w != nullptr, "unknown built-in workload");
  PlatformOptions opts;
  opts.dynamic_areas = areas;
  if (sc.fault[0] != '\0') {
    fault::FaultSpec spec;
    RTR_CHECK(fault::FaultSpec::parse(
                  std::string(sc.fault) + ":" + std::to_string(seed), &spec),
              "bad built-in fault spec");
    opts.fault_plan.add(spec);
  }
  Platform p{opts};
  serve::ServeOptions so;
  so.recovery.use_dma = sc.dma;
  so.plan_cache = plan_cache;
  so.slos = slos;
  if (sc.budget_ms > 0) {
    so.hw_attempt_budget = sim::SimTime::from_ms(sc.budget_ms);
  }
  const serve::ServeReport r =
      serve::run_workload(p, *w, seed, so, sc.repair_at);

  bool ok = r.digests_ok && r.failed == 0 && r.unservable == 0;
  ok = ok && sc.expect_shed == (r.shed > 0);
  ok = ok && sc.expect_watchdog == (r.watchdog_aborts > 0);
  ok = ok && sc.expect_breaker_cycle ==
                 (r.breaker_opens > 0 && r.breaker_closes > 0);
  ok = ok && sc.expect_degraded == (r.degraded > 0);

  const auto& lat = p.sim().stats().histogram("serve.latency_ps");
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "%-15s wl=%-7s sub=%-3lld hw=%-3lld sw=%-3lld shed=%-2lld exp=%-2lld "
      "miss=%-2lld wd=%-2lld brk=%lld/%lld p50=%-10s %s",
      sc.name, sc.workload, static_cast<long long>(r.submitted),
      static_cast<long long>(r.served_hw), static_cast<long long>(r.degraded),
      static_cast<long long>(r.shed), static_cast<long long>(r.expired),
      static_cast<long long>(r.deadline_miss),
      static_cast<long long>(r.watchdog_aborts),
      static_cast<long long>(r.breaker_opens),
      static_cast<long long>(r.breaker_closes),
      sim::SimTime::from_ps(static_cast<std::int64_t>(lat.p50()))
          .to_string()
          .c_str(),
      ok ? "ok" : "MISMATCH");

  ServeScenarioOutcome o;
  o.line = buf;
  o.ok = ok;
  o.stats = p.sim().stats();
  return o;
}

/// Print the serve.* slice of a (merged) registry: the serving layer's
/// counters plus latency percentiles, nothing from the lower layers.
void print_serve_stats(const sim::StatRegistry& reg) {
  for (const auto& [name, c] : reg.counters()) {
    if (name.rfind("serve.", 0) == 0) {
      std::printf("  %-24s %lld\n", name.c_str(),
                  static_cast<long long>(c.value()));
    }
  }
  for (const auto& [name, h] : reg.histograms()) {
    if (name.rfind("serve.", 0) == 0 && h.count() > 0) {
      std::printf("  %-24s count=%lld p50=%s p90=%s p99=%s p999=%s\n",
                  name.c_str(), static_cast<long long>(h.count()),
                  sim::SimTime::from_ps(static_cast<std::int64_t>(h.p50()))
                      .to_string()
                      .c_str(),
                  sim::SimTime::from_ps(static_cast<std::int64_t>(h.p90()))
                      .to_string()
                      .c_str(),
                  sim::SimTime::from_ps(static_cast<std::int64_t>(h.p99()))
                      .to_string()
                      .c_str(),
                  sim::SimTime::from_ps(static_cast<std::int64_t>(h.p999()))
                      .to_string()
                      .c_str());
    }
  }
}

/// Single named workload on one platform, with optional --fault-spec /
/// --repair-at and the full observability surface (--trace-out records the
/// SERVE track, --stats-out the serve.* stats).
template <typename Platform>
int serve_single(const Args& a) {
  const serve::WorkloadSpec* w = serve::workload_by_name(a.workload);
  const serve::OpenLoopSpec* ow = serve::open_workload_by_name(a.workload);
  RTR_CHECK(w != nullptr || ow != nullptr,
            "workload validated at parse time");
  trace::Tracer tracer;
  tracer.enable(!a.trace_out.empty() || !a.incident_dir.empty());
  // Recorder-only runs keep the tracer's own store off: retention then
  // lives entirely in the recorder's bounded ring.
  if (a.trace_out.empty()) tracer.set_store_events(false);
  std::optional<trace::FlightRecorder> recorder;
  if (!a.incident_dir.empty()) {
    recorder.emplace(tracer);
    recorder->set_output_dir(a.incident_dir);
  }
  PlatformOptions opts;
  opts.tracer = &tracer;
  opts.dynamic_areas = a.areas;
  if (!build_fault_plan(a, &opts.fault_plan)) return 2;
  Platform p{opts};
  apply_log_level(p.sim(), a);
  if (recorder) {
    p.sim().attach_flight_recorder(*recorder);
    recorder->add_state_provider(
        "stats", [&p](std::ostream& os) { p.sim().stats().export_json(os); });
  }

  serve::ServeOptions so;
  so.recovery.use_dma = a.dma;
  so.plan_cache = a.plan_cache;
  so.slos = a.slos;
  so.batch.max_batch = a.max_batch;
  so.batch.slack_ps = sim::SimTime::from_us(a.batch_slack_us).ps();
  const serve::ServeReport r =
      w != nullptr ? serve::run_workload(p, *w, a.fault_seed, so, a.repair_at)
                   : serve::run_open_workload(p, *ow, a.fault_seed, so);

  std::printf("serve: system %d, workload %s, seed %llu\n", a.system,
              a.workload.c_str(),
              static_cast<unsigned long long>(a.fault_seed));
  print_serve_stats(p.sim().stats());
  for (const serve::SloSpec& s : a.slos) {
    std::printf("slo: %s\n", s.to_string().c_str());
  }
  if (!a.slos.empty()) {
    std::printf("slo breaches: %lld\n",
                static_cast<long long>(r.slo_breaches));
  }
  if (recorder) {
    std::printf("incidents: %zu (%lld triggers, %lld suppressed)\n",
                recorder->incidents().size(),
                static_cast<long long>(recorder->triggers()),
                static_cast<long long>(recorder->suppressed()));
    for (const auto& inc : recorder->incidents()) {
      std::printf("  incident %d: %s req=%lld at=%s\n", inc.index,
                  inc.kind.c_str(), static_cast<long long>(inc.req_id),
                  sim::SimTime::from_ps(inc.at_ps).to_string().c_str());
    }
  }
  std::printf("digests: %s\n", r.digests_ok ? "ok" : "MISMATCH");
  if (!a.fault_specs.empty()) print_fault_summary(p.faults());
  const int dump_rc = dump_observability(p.sim(), tracer, a);
  return r.digests_ok && r.failed == 0 ? dump_rc : 1;
}

/// Host ns per disposed request of the serve hot path: a steady workload
/// with tracing disabled and the plan cache on, best-of-reps. This is the
/// overhead-gate baseline -- CI fails the microbench smoke when
/// instrumentation regresses it by more than 5% against the committed
/// BENCH_serve.json. Mirrors bench/microbench.cpp's BM_ServeSteadyHot.
double measure_serve_hot_ns_per_req() {
  const serve::WorkloadSpec* w = serve::workload_by_name("steady");
  RTR_CHECK(w != nullptr, "steady workload exists");
  std::int64_t disposed = 0;
  const double ns = best_ns(
      [&] {
        Platform32 p;
        serve::ServeOptions so;
        const serve::ServeReport r =
            serve::run_workload(p, *w, /*seed=*/1, so);
        disposed = static_cast<std::int64_t>(r.completions.size());
        asm volatile("" : : "r"(disposed) : "memory");
      },
      /*reps=*/5);
  return disposed > 0 ? ns / static_cast<double>(disposed) : 0.0;
}

/// Tail-latency source for the serve bench: the "heavy" workload (1280
/// requests) on the 32-bit platform. The 8-scenario matrix disposes too
/// few requests for the tail to be populated -- its p99 and p999 sit on
/// the same sample -- so the bench percentiles come from this run instead.
/// Simulated and deterministic: a pure function of (seed, plan_cache).
sim::Histogram serve_bench_latency(std::uint64_t seed, bool plan_cache) {
  const serve::WorkloadSpec* w = serve::workload_by_name("heavy");
  RTR_CHECK(w != nullptr, "heavy workload exists");
  Platform32 p;
  serve::ServeOptions so;
  so.plan_cache = plan_cache;
  (void)serve::run_workload(p, *w, seed, so);
  return p.sim().stats().histogram("serve.latency_ps");
}

/// One arm of the multi-area serve A/B: the "heavy" workload on the 64-bit
/// platform with `areas` co-resident dynamic areas, counting the
/// reconfigurations the device actually streamed (every successful ensure
/// lands in exactly one rtr.ensure.latency_ps.* series; the non-resident
/// three are swaps, "resident" is a warm hit -- possibly a cross-area dock
/// re-bind). Simulated and deterministic per (areas, seed, plan_cache).
struct ServeAreaArm {
  std::int64_t requests = 0;
  std::int64_t swaps = 0;
  std::int64_t complete_loads = 0;  // the complete (full-bitstream) subset
  std::int64_t resident_hits = 0;
  std::int64_t deadline_miss = 0;
  std::int64_t batches = 0;            // serve_batch pops (0 when unbatched)
  std::int64_t coalesced = 0;          // members beyond each batch leader
  std::int64_t chain_descriptors = 0;  // dma.chain.descriptors
  double p50 = 0, p99 = 0, p999 = 0;   // serve.latency_ps percentiles
};

/// `max_batch` = 1 measures the unbatched arm; > 1 enables swap-aware
/// batching with the given admission slack (docs/SERVING.md "Batching").
ServeAreaArm measure_serve_area_arm(int areas, std::uint64_t seed,
                                    bool plan_cache, int max_batch,
                                    std::int64_t slack_ps) {
  const serve::WorkloadSpec* w = serve::workload_by_name("heavy");
  RTR_CHECK(w != nullptr, "heavy workload exists");
  PlatformOptions opts;
  opts.dynamic_areas = areas;
  Platform64 p{opts};
  serve::ServeOptions so;
  so.plan_cache = plan_cache;
  so.batch.max_batch = max_batch;
  so.batch.slack_ps = slack_ps;
  const serve::ServeReport r = serve::run_workload(p, *w, seed, so);
  ServeAreaArm arm;
  arm.requests = static_cast<std::int64_t>(r.completions.size());
  arm.deadline_miss = r.deadline_miss;
  arm.batches = max_batch > 1 ? r.batches : 0;
  arm.coalesced = r.coalesced;
  const auto& hists = p.sim().stats().histograms();
  for (const char* path : {"cached", "differential", "complete"}) {
    const auto it =
        hists.find(std::string("rtr.ensure.latency_ps.") + path);
    if (it != hists.end()) arm.swaps += it->second.count();
  }
  const auto complete = hists.find("rtr.ensure.latency_ps.complete");
  if (complete != hists.end()) {
    arm.complete_loads = complete->second.count();
  }
  const auto hit = hists.find("rtr.ensure.latency_ps.resident");
  if (hit != hists.end()) arm.resident_hits = hit->second.count();
  const auto lat = hists.find("serve.latency_ps");
  if (lat != hists.end() && lat->second.count() > 0) {
    arm.p50 = lat->second.p50();
    arm.p99 = lat->second.p99();
    arm.p999 = lat->second.p999();
  }
  const auto& counters = p.sim().stats().counters();
  const auto cd = counters.find("dma.chain.descriptors");
  if (cd != counters.end()) arm.chain_descriptors = cd->second.value();
  return arm;
}

/// Serve-matrix throughput record (host wall-clock; the simulated outputs
/// above are the determinism surface, this is the perf surface). Mirrors
/// write_bench_json's shape so CI can smoke both baselines the same way.
/// v2 added latency percentiles and the hot-path baseline; v3 takes the
/// percentiles from the >= 1k-request "heavy" workload so p99 and p999
/// are distinct, populated tail statistics; v4 records the matrix's area
/// count and the multi-area A/B (the same heavy workload on the 64-bit
/// platform with 1 vs 2 co-resident areas, docs/PLACEMENT.md); v5 adds the
/// batching A/B (the two-area heavy workload, unbatched vs swap-aware
/// batching, docs/SERVING.md "Batching") with per-arm deadline misses and
/// tail percentiles -- the swap amortization gate and the
/// no-deadline-sacrificed check read this block.
bool write_serve_bench_json(const std::string& path, std::size_t scenarios,
                            int jobs, double wall_ms, bool plan_cache,
                            const sim::Histogram& lat, double hot_ns_per_req,
                            int areas, const ServeAreaArm& one,
                            const ServeAreaArm& two,
                            const ServeAreaArm& batched, int max_batch,
                            long long batch_slack_us) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  char buf[3072];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"schema\": \"rtrsim-serve-bench-v5\",\n"
      "  \"serve\": {\n"
      "    \"scenarios\": %zu,\n"
      "    \"jobs\": %d,\n"
      "    \"areas\": %d,\n"
      "    \"plan_cache\": %s,\n"
      "    \"wall_ms\": %.1f,\n"
      "    \"scenarios_per_sec\": %.2f,\n"
      "    \"latency_workload\": \"heavy\",\n"
      "    \"latency_requests\": %lld,\n"
      "    \"latency_ps\": {\"p50\": %.0f, \"p90\": %.0f, \"p99\": %.0f, "
      "\"p999\": %.0f},\n"
      "    \"hot_path\": {\"BM_ServeSteadyHot_ns_per_req\": %.1f},\n"
      "    \"multi_area\": {\n"
      "      \"workload\": \"heavy\",\n"
      "      \"system\": 64,\n"
      "      \"requests\": %lld,\n"
      "      \"one_area\": {\"swaps\": %lld, \"complete_loads\": %lld, "
      "\"resident_hits\": %lld},\n"
      "      \"two_areas\": {\"swaps\": %lld, \"complete_loads\": %lld, "
      "\"resident_hits\": %lld},\n"
      "      \"swap_drop\": %.2f\n"
      "    },\n"
      "    \"batching\": {\n"
      "      \"workload\": \"heavy\",\n"
      "      \"system\": 64,\n"
      "      \"areas\": 2,\n"
      "      \"max_batch\": %d,\n"
      "      \"slack_us\": %lld,\n"
      "      \"unbatched\": {\"swaps\": %lld, \"deadline_miss\": %lld, "
      "\"latency_ps\": {\"p50\": %.0f, \"p99\": %.0f, \"p999\": %.0f}},\n"
      "      \"batched\": {\"swaps\": %lld, \"deadline_miss\": %lld, "
      "\"batches\": %lld, \"coalesced\": %lld, "
      "\"chain_descriptors\": %lld, "
      "\"latency_ps\": {\"p50\": %.0f, \"p99\": %.0f, \"p999\": %.0f}},\n"
      "      \"swap_drop\": %.2f\n"
      "    }\n"
      "  }\n"
      "}\n",
      scenarios, jobs, areas, plan_cache ? "true" : "false", wall_ms,
      wall_ms > 0 ? 1000.0 * static_cast<double>(scenarios) / wall_ms : 0.0,
      static_cast<long long>(lat.count()), lat.p50(), lat.p90(), lat.p99(),
      lat.p999(), hot_ns_per_req, static_cast<long long>(one.requests),
      static_cast<long long>(one.swaps),
      static_cast<long long>(one.complete_loads),
      static_cast<long long>(one.resident_hits),
      static_cast<long long>(two.swaps),
      static_cast<long long>(two.complete_loads),
      static_cast<long long>(two.resident_hits),
      two.swaps > 0 ? static_cast<double>(one.swaps) /
                          static_cast<double>(two.swaps)
                    : 0.0,
      max_batch, batch_slack_us, static_cast<long long>(two.swaps),
      static_cast<long long>(two.deadline_miss), two.p50, two.p99, two.p999,
      static_cast<long long>(batched.swaps),
      static_cast<long long>(batched.deadline_miss),
      static_cast<long long>(batched.batches),
      static_cast<long long>(batched.coalesced),
      static_cast<long long>(batched.chain_descriptors), batched.p50,
      batched.p99, batched.p999,
      batched.swaps > 0 ? static_cast<double>(two.swaps) /
                              static_cast<double>(batched.swaps)
                        : 0.0);
  f << buf;
  return static_cast<bool>(f);
}

int serve_cmd(const Args& a) {
  if (!a.workload.empty()) {
    if (a.system == 32 && a.areas > 1) {
      std::fprintf(stderr,
                   "rtrsim_cli: --areas %d requires --system 64 (the XC2VP7 "
                   "hosts a single dynamic area)\n",
                   a.areas);
      return 2;
    }
    return a.system == 32 ? serve_single<Platform32>(a)
                          : serve_single<Platform64>(a);
  }
  if (!a.incident_dir.empty()) {
    std::fprintf(stderr, "rtrsim_cli: --incident-dir requires --workload\n");
    return 2;
  }

  std::vector<ServeScenario> list;
  if (a.smoke) {
    for (const std::size_t i : kServeSmokeIndices) {
      list.push_back(kServeScenarios[i]);
    }
  } else {
    list.assign(std::begin(kServeScenarios), std::end(kServeScenarios));
  }

  const unsigned hc = std::thread::hardware_concurrency();
  const int jobs = a.jobs > 0 ? a.jobs : static_cast<int>(hc > 0 ? hc : 1);

  // Same pool shape as `sweep`: scenarios are claimed by an atomic cursor
  // but land in a results slot fixed by scenario index, so stdout is
  // byte-identical for any -j.
  std::vector<ServeScenarioOutcome> results(list.size());
  std::atomic<std::size_t> next{0};
  const auto wall0 = std::chrono::steady_clock::now();
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= list.size()) return;
      // 32-bit scenarios always run single-area: the XC2VP7 strip has no
      // room for a second column-disjoint area (fabric/dynamic_region).
      results[i] = list[i].system == 32
                       ? serve_scenario<Platform32>(list[i], a.fault_seed,
                                                    a.plan_cache, a.slos, 1)
                       : serve_scenario<Platform64>(list[i], a.fault_seed,
                                                    a.plan_cache, a.slos,
                                                    a.areas);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs) - 1);
  for (int j = 1; j < jobs; ++j) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall0)
                             .count();

  std::printf("serve matrix: %zu scenarios, seed=%llu\n", list.size(),
              static_cast<unsigned long long>(a.fault_seed));
  sim::StatRegistry agg;
  bool all_ok = true;
  for (const ServeScenarioOutcome& o : results) {
    std::printf("%s\n", o.line.c_str());
    all_ok = all_ok && o.ok;
    agg.merge(o.stats);
  }
  std::printf("aggregate:\n");
  print_serve_stats(agg);
  std::printf("%s\n", all_ok ? "all scenarios matched expectations"
                             : "EXPECTATION MISMATCH");

  // Host-side timing is non-deterministic by nature: stderr only.
  std::fprintf(stderr, "serve: %zu scenarios, %d jobs, %.1f ms wall\n",
               list.size(), jobs, wall_ms);

  if (!a.bench_out.empty()) {
    const double hot_ns = measure_serve_hot_ns_per_req();
    std::fprintf(stderr, "serve: hot path %.1f ns/req (steady, p32)\n",
                 hot_ns);
    const sim::Histogram lat =
        serve_bench_latency(a.fault_seed, a.plan_cache);
    const std::int64_t slack_ps =
        sim::SimTime::from_us(a.batch_slack_us).ps();
    const int bench_batch = a.max_batch > 1 ? a.max_batch : 8;
    const ServeAreaArm one =
        measure_serve_area_arm(1, a.fault_seed, a.plan_cache, 1, slack_ps);
    const ServeAreaArm two =
        measure_serve_area_arm(2, a.fault_seed, a.plan_cache, 1, slack_ps);
    const ServeAreaArm batched = measure_serve_area_arm(
        2, a.fault_seed, a.plan_cache, bench_batch, slack_ps);
    std::fprintf(stderr,
                 "serve: multi-area heavy/p64 swaps %lld (1 area) vs %lld "
                 "(2 areas)\n",
                 static_cast<long long>(one.swaps),
                 static_cast<long long>(two.swaps));
    std::fprintf(stderr,
                 "serve: batching heavy/p64/2-areas swaps %lld (unbatched) "
                 "vs %lld (max-batch %d), deadline_miss %lld vs %lld\n",
                 static_cast<long long>(two.swaps),
                 static_cast<long long>(batched.swaps), bench_batch,
                 static_cast<long long>(two.deadline_miss),
                 static_cast<long long>(batched.deadline_miss));
    if (!write_serve_bench_json(a.bench_out, list.size(), jobs, wall_ms,
                                a.plan_cache, lat, hot_ns, a.areas, one,
                                two, batched, bench_batch,
                                a.batch_slack_us)) {
      return 1;
    }
  }
  return all_ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// fleet: N-device serving with reconfiguration-affinity routing.
// ---------------------------------------------------------------------------

/// Requests one serve-matrix scenario submits on average: every workload
/// submits exactly clients x rounds requests, so the matrix total is a
/// constant 91 over its 8 scenarios (mixed 12, hash 9, burst 16, mixed 12,
/// image 9, hash 9, steady 12, steady 12). The fleet bench normalises its
/// aggregate requests/sec by this to report scenario-equivalents/sec
/// directly comparable with BENCH_serve.json's scenarios_per_sec.
constexpr double kServeMatrixRequestsPerScenario = 91.0 / 8.0;

serve::fleet::FleetOptions fleet_options(const Args& a) {
  serve::fleet::FleetOptions fo;
  fo.devices = a.devices;
  fo.mix = a.mix;
  fo.affinity = a.affinity;
  fo.steal_threshold = a.steal_threshold;
  fo.plan_cache = a.plan_cache;
  fo.areas = a.areas;
  fo.batch.max_batch = a.max_batch;
  fo.batch.slack_ps = sim::SimTime::from_us(a.batch_slack_us).ps();
  const unsigned hc = std::thread::hardware_concurrency();
  fo.jobs = a.jobs > 0 ? a.jobs : static_cast<int>(hc > 0 ? hc : 1);
  fo.seed = a.fault_seed;
  return fo;
}

serve::fleet::FleetWorkloadSpec fleet_workload(const Args& a) {
  serve::fleet::FleetWorkloadSpec fw;
  fw.requests = a.requests;
  fw.mean_gap_ps = sim::SimTime::from_us(a.arrival_us).ps();
  fw.zipf_skew = a.zipf_skew;
  return fw;
}

std::string fmt_ps(double ps) {
  return sim::SimTime::from_ps(static_cast<std::int64_t>(ps)).to_string();
}

/// Host ns per routing decision, mirroring BM_FleetRouteDecision: route
/// the full arrival stream through a fresh 8-shard router, best-of-reps.
double measure_fleet_route_ns(const std::vector<serve::Request>& stream,
                              const Args& a) {
  std::vector<int> systems;
  for (int i = 0; i < a.devices; ++i) {
    systems.push_back(a.mix[static_cast<std::size_t>(i) % a.mix.size()]);
  }
  const double ns = best_ns([&] {
    serve::fleet::FleetRouter router(systems, a.affinity, a.steal_threshold,
                                     a.fault_seed);
    for (const serve::Request& r : stream) (void)router.route(r);
    asm volatile("" : : "r"(router.counters().decisions) : "memory");
  });
  return stream.empty() ? 0.0 : ns / static_cast<double>(stream.size());
}

/// v3 adds the batched arm: the identical stream with per-shard swap-aware
/// batching enabled (docs/SERVING.md "Batching"), against the primary
/// (unbatched) run -- the fleet-level swap amortization record.
bool write_fleet_bench_json(const std::string& path, const Args& a,
                            const serve::fleet::FleetReport& fr,
                            double wall_ms,
                            const serve::fleet::FleetReport& fr_rand,
                            double rand_wall_ms,
                            const serve::fleet::FleetReport& fr_single,
                            double single_wall_ms,
                            const serve::fleet::FleetReport& fr_batched,
                            double batched_wall_ms, int bench_batch,
                            double route_ns) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  const double rps =
      wall_ms > 0 ? 1000.0 * static_cast<double>(fr.requests) / wall_ms : 0.0;
  const double rand_rps =
      rand_wall_ms > 0
          ? 1000.0 * static_cast<double>(fr_rand.requests) / rand_wall_ms
          : 0.0;
  const auto it = fr.stats.histograms().find("fleet.latency_ps");
  RTR_CHECK(it != fr.stats.histograms().end(), "fleet latency recorded");
  const sim::Histogram& lat = it->second;
  char buf[3072];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"schema\": \"rtrsim-fleet-bench-v3\",\n"
      "  \"fleet\": {\n"
      "    \"devices\": %d,\n"
      "    \"mix\": \"%s\",\n"
      "    \"areas\": %d,\n"
      "    \"jobs\": %d,\n"
      "    \"requests\": %lld,\n"
      "    \"plan_cache\": %s,\n"
      "    \"steal_threshold\": %d,\n"
      "    \"zipf_skew\": %d,\n"
      "    \"arrival_us\": %lld,\n"
      "    \"wall_ms\": %.1f,\n"
      "    \"requests_per_sec\": %.1f,\n"
      "    \"requests_per_scenario\": %.3f,\n"
      "    \"scenarios_per_sec\": %.2f,\n"
      "    \"latency_ps\": {\"p50\": %.0f, \"p90\": %.0f, \"p99\": %.0f, "
      "\"p999\": %.0f},\n"
      "    \"route\": {\"decisions\": %lld, \"affinity_hits\": %lld, "
      "\"rebalances\": %lld, \"steals\": %lld},\n"
      "    \"served_hw\": %lld,\n"
      "    \"degraded\": %lld,\n"
      "    \"swaps\": %lld,\n"
      "    \"no_affinity\": {\"wall_ms\": %.1f, \"requests_per_sec\": %.1f, "
      "\"swaps\": %lld, \"served_hw\": %lld, \"degraded\": %lld},\n"
      "    \"single_area\": {\"wall_ms\": %.1f, \"swaps\": %lld, "
      "\"served_hw\": %lld, \"degraded\": %lld, \"swap_drop\": %.2f},\n"
      "    \"batched\": {\"max_batch\": %d, \"wall_ms\": %.1f, "
      "\"swaps\": %lld, \"served_hw\": %lld, \"degraded\": %lld, "
      "\"deadline_miss\": %lld, \"swap_drop\": %.2f}\n"
      "  },\n"
      "  \"ns_per_op\": {\"BM_FleetRouteDecision\": %.1f}\n"
      "}\n",
      a.devices, a.mix_text.c_str(), a.areas,
      a.jobs > 0 ? a.jobs : fleet_options(a).jobs,
      static_cast<long long>(fr.requests), a.plan_cache ? "true" : "false",
      a.steal_threshold, a.zipf_skew, a.arrival_us, wall_ms, rps,
      kServeMatrixRequestsPerScenario,
      rps / kServeMatrixRequestsPerScenario, lat.p50(), lat.p90(), lat.p99(),
      lat.p999(), static_cast<long long>(fr.route.decisions),
      static_cast<long long>(fr.route.affinity_hits),
      static_cast<long long>(fr.route.rebalances),
      static_cast<long long>(fr.route.steals),
      static_cast<long long>(fr.served_hw),
      static_cast<long long>(fr.degraded), static_cast<long long>(fr.swaps),
      rand_wall_ms, rand_rps, static_cast<long long>(fr_rand.swaps),
      static_cast<long long>(fr_rand.served_hw),
      static_cast<long long>(fr_rand.degraded), single_wall_ms,
      static_cast<long long>(fr_single.swaps),
      static_cast<long long>(fr_single.served_hw),
      static_cast<long long>(fr_single.degraded),
      fr.swaps > 0 ? static_cast<double>(fr_single.swaps) /
                         static_cast<double>(fr.swaps)
                   : 0.0,
      bench_batch, batched_wall_ms,
      static_cast<long long>(fr_batched.swaps),
      static_cast<long long>(fr_batched.served_hw),
      static_cast<long long>(fr_batched.degraded),
      static_cast<long long>(fr_batched.deadline_miss),
      fr_batched.swaps > 0 ? static_cast<double>(fr.swaps) /
                                 static_cast<double>(fr_batched.swaps)
                           : 0.0,
      route_ns);
  f << buf;
  return static_cast<bool>(f);
}

int fleet_cmd(const Args& a) {
  const serve::fleet::FleetOptions fo = fleet_options(a);
  const serve::fleet::FleetWorkloadSpec fw = fleet_workload(a);

  const auto wall0 = std::chrono::steady_clock::now();
  const serve::fleet::FleetReport fr = serve::fleet::run_fleet(fo, fw);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall0)
                             .count();

  // Everything on stdout is simulated/deterministic: the fleet-determinism
  // CI job diffs it across -j values.
  std::printf("fleet: %d devices (mix %s), %d requests, seed=%llu, "
              "affinity=%s, steal-threshold=%d, zipf-skew=%d, areas=%d, "
              "max-batch=%d\n",
              a.devices, a.mix_text.c_str(), a.requests,
              static_cast<unsigned long long>(a.fault_seed),
              a.affinity ? "on" : "off", a.steal_threshold, a.zipf_skew,
              a.areas, a.max_batch);
  for (std::size_t i = 0; i < fr.shards.size(); ++i) {
    const serve::fleet::ShardOutcome& s = fr.shards[i];
    const auto hist =
        s.stats.histograms().find("serve.latency_ps");
    const bool has_lat =
        hist != s.stats.histograms().end() && hist->second.count() > 0;
    std::printf(
        "shard %-2zu sys=%d routed=%-4lld hw=%-4lld sw=%-3lld shed=%-3lld "
        "exp=%-3lld miss=%-3lld swaps=%-3lld p50=%s\n",
        i, s.system, static_cast<long long>(s.routed),
        static_cast<long long>(s.report.served_hw),
        static_cast<long long>(s.report.degraded),
        static_cast<long long>(s.report.shed),
        static_cast<long long>(s.report.expired),
        static_cast<long long>(s.report.deadline_miss),
        static_cast<long long>(s.swaps),
        has_lat ? fmt_ps(hist->second.p50()).c_str() : "-");
  }
  std::printf("route: decisions=%lld affinity_hits=%lld rebalances=%lld "
              "steals=%lld\n",
              static_cast<long long>(fr.route.decisions),
              static_cast<long long>(fr.route.affinity_hits),
              static_cast<long long>(fr.route.rebalances),
              static_cast<long long>(fr.route.steals));
  std::printf("fleet: hw=%lld sw=%lld shed=%lld expired=%lld miss=%lld "
              "swaps=%lld digests=%s\n",
              static_cast<long long>(fr.served_hw),
              static_cast<long long>(fr.degraded),
              static_cast<long long>(fr.shed),
              static_cast<long long>(fr.expired),
              static_cast<long long>(fr.deadline_miss),
              static_cast<long long>(fr.swaps),
              fr.digests_ok ? "ok" : "MISMATCH");
  const auto lat = fr.stats.histograms().find("fleet.latency_ps");
  if (lat != fr.stats.histograms().end() && lat->second.count() > 0) {
    std::printf("fleet latency: count=%lld p50=%s p90=%s p99=%s p999=%s\n",
                static_cast<long long>(lat->second.count()),
                fmt_ps(lat->second.p50()).c_str(),
                fmt_ps(lat->second.p90()).c_str(),
                fmt_ps(lat->second.p99()).c_str(),
                fmt_ps(lat->second.p999()).c_str());
  }

  // Host timing: non-deterministic by nature, stderr only.
  std::fprintf(stderr,
               "fleet: %d requests, %d devices, %d jobs, %.1f ms wall "
               "(%.0f req/s)\n",
               a.requests, a.devices, fo.jobs, wall_ms,
               wall_ms > 0 ? 1000.0 * a.requests / wall_ms : 0.0);

  if (!a.stats_out.empty()) {
    std::ofstream f(a.stats_out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", a.stats_out.c_str());
      return 1;
    }
    if (a.stats_format == "csv") {
      fr.stats.export_csv(f);
    } else {
      fr.stats.export_json(f);
    }
  }

  if (!a.bench_out.empty()) {
    // A/B arm: the identical stream under seeded-random sharding. Request
    // ids are assigned before routing, so both arms serve identical work
    // and the swap counts compare like for like.
    serve::fleet::FleetOptions rand_fo = fo;
    rand_fo.affinity = false;
    const auto rand0 = std::chrono::steady_clock::now();
    const serve::fleet::FleetReport fr_rand =
        serve::fleet::run_fleet(rand_fo, fw);
    const double rand_wall_ms = std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - rand0)
                                    .count();
    // Single-area arm: the identical stream with co-residency disabled
    // (areas=1 everywhere). With --areas 1 the primary run already is that
    // arm, so it is reused rather than re-run.
    serve::fleet::FleetReport fr_single = fr;
    double single_wall_ms = wall_ms;
    if (a.areas > 1) {
      serve::fleet::FleetOptions single_fo = fo;
      single_fo.areas = 1;
      const auto single0 = std::chrono::steady_clock::now();
      fr_single = serve::fleet::run_fleet(single_fo, fw);
      single_wall_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - single0)
                           .count();
    }
    // Batched arm: the identical stream with per-shard swap-aware batching
    // enabled. With batching already on, the primary run is that arm.
    const int bench_batch = a.max_batch > 1 ? a.max_batch : 8;
    serve::fleet::FleetReport fr_batched = fr;
    double batched_wall_ms = wall_ms;
    if (a.max_batch <= 1) {
      serve::fleet::FleetOptions batched_fo = fo;
      batched_fo.batch.max_batch = bench_batch;
      const auto batched0 = std::chrono::steady_clock::now();
      fr_batched = serve::fleet::run_fleet(batched_fo, fw);
      batched_wall_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - batched0)
                            .count();
    }
    const std::vector<serve::Request> stream =
        serve::fleet::make_fleet_stream(fw, a.fault_seed);
    const double route_ns = measure_fleet_route_ns(stream, a);
    std::fprintf(stderr,
                 "fleet: no-affinity %.1f ms wall, swaps %lld vs %lld, "
                 "single-area swaps %lld, batched swaps %lld, "
                 "route %.1f ns/decision\n",
                 rand_wall_ms, static_cast<long long>(fr_rand.swaps),
                 static_cast<long long>(fr.swaps),
                 static_cast<long long>(fr_single.swaps),
                 static_cast<long long>(fr_batched.swaps), route_ns);
    if (!write_fleet_bench_json(a.bench_out, a, fr, wall_ms, fr_rand,
                                rand_wall_ms, fr_single, single_wall_ms,
                                fr_batched, batched_wall_ms, bench_batch,
                                route_ns)) {
      return 1;
    }
  }
  return fr.digests_ok && fr.failed == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// chaos: deterministic device-failure matrix over the health-tracking
// fleet (docs/FLEET_HEALTH.md). Every scenario runs three arms on the
// identical arrival stream: a fault-free baseline, the fault plan with the
// HealthTracker on, and the same plan with the tracker off. Goodput
// retained -- completed requests as an integer percentage of the baseline
// -- is the headline number; where the matrix declares a floor the tracker
// arm must hold it while the no-tracker arm demonstrably cannot.
// Everything on stdout is simulated/deterministic (the chaos-determinism
// CI job diffs it across -j values and seeds); host wall-clock goes to
// stderr and the bench JSON only.
// ---------------------------------------------------------------------------

struct ChaosScenario {
  const char* name;
  const char* intent;  // one deterministic line of context
  int devices;
  int requests;
  int zipf_skew;
  /// Mean interarrival gap. The matrix keeps the fleet below saturation on
  /// purpose: an overloaded device arms watchdogs against request
  /// deadlines and opens breakers with no fault present, and those
  /// congestion signals would (correctly, but unhelpfully for an A/B
  /// gate) quarantine healthy devices too.
  long long arrival_us;
  std::vector<const char*> faults;  // specs; seeds are offsets off --seed
  int repair_at_epoch;              // -1 = never (health arm only)
  bool smoke;                       // part of the --smoke subset
  // Expectations -- the exit status and the CI goodput-retention gate.
  int min_tracker_pct;     // tracker-arm goodput floor, -1 = none
  bool expect_separation;  // no-tracker goodput must fall below the floor
  bool expect_readmit;     // a probation -> healthy readmission must occur
  bool expect_no_healthy;  // typed no_healthy_device failures must occur
};

std::vector<ChaosScenario> chaos_matrix() {
  return {
      {"fail-stop-mid",
       "device 0 fail-stops mid-burst; quarantine + re-dispatch to survivors",
       4, 800, 1, 2500, {"fail_stop:stuck@40:0:0"}, -1, true, 90, true,
       false, false},
      {"brownout-churn",
       "device 1 brownout bursts corrupt config loads under uniform churn",
       4, 600, 0, 2500, {"brownout:every@4:0:1"}, -1, false, 90, false,
       false, false},
      {"quarantine-recover",
       "device 2 fail-stops, field repair at epoch 5; must probe + readmit",
       4, 1200, 1, 2500, {"fail_stop:stuck@25:0:2"}, 5, true, 90, true,
       true, false},
      {"all-degraded",
       "every device fail-stops; typed no-healthy-device admission failures",
       4, 400, 1, 2500, {"fail_stop:stuck@30:0"}, -1, false, -1, false,
       false, true},
  };
}

struct ChaosArm {
  serve::fleet::FleetReport fr;
  double wall_ms = 0;
};

/// One arm of one scenario. All three arms share the scenario's workload
/// spec and --seed, so they serve the identical arrival stream.
ChaosArm run_chaos_arm(const ChaosScenario& s, const Args& a, bool faults,
                       bool health, trace::Tracer* tracer) {
  serve::fleet::FleetOptions fo;
  fo.devices = s.devices;
  fo.mix = a.mix;
  fo.affinity = true;
  fo.steal_threshold = a.steal_threshold;
  fo.plan_cache = true;
  fo.areas = a.areas;
  fo.batch.max_batch = a.max_batch;
  fo.batch.slack_ps = sim::SimTime::from_us(a.batch_slack_us).ps();
  const unsigned hc = std::thread::hardware_concurrency();
  fo.jobs = a.jobs > 0 ? a.jobs : static_cast<int>(hc > 0 ? hc : 1);
  fo.seed = a.fault_seed;
  if (faults) {
    for (const char* text : s.faults) {
      fault::FaultSpec spec;
      RTR_CHECK(fault::FaultSpec::parse(text, &spec), "chaos matrix spec");
      spec.seed += a.fault_seed;  // matrix seeds shift with --seed
      fo.fault_plan.add(spec);
    }
    fo.repair_at_epoch = s.repair_at_epoch;
  }
  if (health) {
    fo.health.enabled = true;
    fo.tracer = tracer;
  }
  serve::fleet::FleetWorkloadSpec fw;
  fw.requests = s.requests;
  fw.mean_gap_ps = sim::SimTime::from_us(s.arrival_us).ps();
  fw.zipf_skew = s.zipf_skew;
  ChaosArm arm;
  const auto t0 = std::chrono::steady_clock::now();
  arm.fr = serve::fleet::run_fleet(fo, fw);
  arm.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return arm;
}

std::int64_t chaos_completed(const serve::fleet::FleetReport& fr) {
  return fr.served_hw + fr.degraded;
}

/// Integer percentage (floor division): deterministic on stdout, no
/// floating-point formatting in the diffed output.
int chaos_pct(std::int64_t completed, std::int64_t baseline) {
  return baseline > 0 ? static_cast<int>(completed * 100 / baseline) : 0;
}

int chaos_cmd(const Args& a) {
  trace::Tracer tracer;
  tracer.enable(!a.trace_out.empty());

  const std::vector<ChaosScenario> matrix = chaos_matrix();
  std::size_t selected = 0;
  for (const ChaosScenario& s : matrix) {
    if (!a.smoke || s.smoke) ++selected;
  }
  std::printf("chaos: %zu scenarios, mix %s, seed=%llu%s\n", selected,
              a.mix_text.c_str(),
              static_cast<unsigned long long>(a.fault_seed),
              a.smoke ? " (smoke)" : "");

  sim::StatRegistry all_stats;  // tracker arms merged, for --stats-out
  std::string bench_rows;
  bool all_ok = true;
  double wall_total = 0;
  for (const ChaosScenario& s : matrix) {
    if (a.smoke && !s.smoke) continue;

    const ChaosArm healthy = run_chaos_arm(s, a, false, false, nullptr);
    const ChaosArm tracked = run_chaos_arm(s, a, true, true, &tracer);
    const ChaosArm naive = run_chaos_arm(s, a, true, false, nullptr);
    wall_total += healthy.wall_ms + tracked.wall_ms + naive.wall_ms;

    const std::int64_t base = chaos_completed(healthy.fr);
    const std::int64_t done_t = chaos_completed(tracked.fr);
    const std::int64_t done_n = chaos_completed(naive.fr);
    const int pct_t = chaos_pct(done_t, base);
    const int pct_n = chaos_pct(done_n, base);

    std::string fault_list;
    for (const char* text : s.faults) {
      if (!fault_list.empty()) fault_list += ",";
      fault_list += text;
    }
    std::printf("scenario %s: %d devices, %d requests, zipf=%d, "
                "faults=[%s], repair-epoch=%d\n",
                s.name, s.devices, s.requests, s.zipf_skew,
                fault_list.c_str(), s.repair_at_epoch);
    std::printf("  %s\n", s.intent);
    std::printf("  healthy:    completed=%lld/%d\n",
                static_cast<long long>(base), s.requests);
    std::printf("  tracker:    completed=%lld goodput=%d%% failed=%lld "
                "redispatched=%lld exhausted=%lld no-healthy=%lld\n",
                static_cast<long long>(done_t), pct_t,
                static_cast<long long>(tracked.fr.failed),
                static_cast<long long>(tracked.fr.redispatched),
                static_cast<long long>(tracked.fr.retry_exhausted),
                static_cast<long long>(tracked.fr.no_healthy_device));
    std::printf("  no-tracker: completed=%lld goodput=%d%% failed=%lld\n",
                static_cast<long long>(done_n), pct_n,
                static_cast<long long>(naive.fr.failed));

    // Health transitions, in decision order: the observable trail of the
    // quarantine -> drain -> probation -> readmit machinery.
    std::int64_t quarantines = 0;
    std::int64_t readmits = 0;
    std::string evline;
    for (const serve::fleet::HealthEvent& e : tracked.fr.health_events) {
      if (e.to == serve::fleet::DeviceState::kQuarantined) ++quarantines;
      if (e.from == serve::fleet::DeviceState::kProbation &&
          e.to == serve::fleet::DeviceState::kHealthy) {
        ++readmits;
      }
      evline += " dev" + std::to_string(e.device) + ":" +
                serve::fleet::device_state_name(e.from) + "->" +
                serve::fleet::device_state_name(e.to) + "@e" +
                std::to_string(e.epoch);
    }
    std::printf("  health:%s\n", evline.empty() ? " (none)" : evline.c_str());

    bool ok = true;
    std::string verdicts;
    if (s.min_tracker_pct >= 0) {
      const bool p = pct_t >= s.min_tracker_pct;
      verdicts += " tracker>=" + std::to_string(s.min_tracker_pct) +
                  "%:" + (p ? "PASS" : "FAIL");
      ok = ok && p;
    }
    if (s.expect_separation) {
      const bool p = pct_n < s.min_tracker_pct;
      verdicts += std::string(" no-tracker<") +
                  std::to_string(s.min_tracker_pct) + "%:" +
                  (p ? "PASS" : "FAIL");
      ok = ok && p;
    }
    if (s.expect_readmit) {
      const bool p = readmits > 0;
      verdicts += std::string(" readmit:") + (p ? "PASS" : "FAIL");
      ok = ok && p;
    }
    if (s.expect_no_healthy) {
      const bool p = tracked.fr.no_healthy_device > 0;
      verdicts += std::string(" no-healthy-typed:") + (p ? "PASS" : "FAIL");
      ok = ok && p;
    }
    std::printf("  expect:%s\n", verdicts.empty() ? " (none)"
                                                  : verdicts.c_str());
    all_ok = all_ok && ok;

    all_stats.merge(tracked.fr.stats);

    char row[1024];
    std::snprintf(
        row, sizeof row,
        "    {\"name\": \"%s\", \"devices\": %d, \"requests\": %d,\n"
        "     \"healthy_completed\": %lld,\n"
        "     \"tracker\": {\"completed\": %lld, \"goodput_pct\": %d, "
        "\"failed\": %lld, \"redispatched\": %lld, \"retry_exhausted\": "
        "%lld, \"no_healthy_device\": %lld, \"quarantines\": %lld, "
        "\"readmits\": %lld, \"wall_ms\": %.1f},\n"
        "     \"no_tracker\": {\"completed\": %lld, \"goodput_pct\": %d, "
        "\"failed\": %lld, \"wall_ms\": %.1f},\n"
        "     \"pass\": %s}",
        s.name, s.devices, s.requests, static_cast<long long>(base),
        static_cast<long long>(done_t), pct_t,
        static_cast<long long>(tracked.fr.failed),
        static_cast<long long>(tracked.fr.redispatched),
        static_cast<long long>(tracked.fr.retry_exhausted),
        static_cast<long long>(tracked.fr.no_healthy_device),
        static_cast<long long>(quarantines),
        static_cast<long long>(readmits), tracked.wall_ms,
        static_cast<long long>(done_n), pct_n,
        static_cast<long long>(naive.fr.failed), naive.wall_ms,
        ok ? "true" : "false");
    if (!bench_rows.empty()) bench_rows += ",\n";
    bench_rows += row;
  }

  std::printf("chaos: %s\n", all_ok ? "all scenarios matched expectations"
                                    : "EXPECTATION FAILURES (see above)");
  std::fprintf(stderr, "chaos: %zu scenarios x 3 arms, %.1f ms wall\n",
               selected, wall_total);

  if (!a.trace_out.empty()) {
    std::ofstream f(a.trace_out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", a.trace_out.c_str());
      return 1;
    }
    if (a.trace_format == "text") {
      tracer.export_timeline(f);
    } else {
      tracer.export_chrome(f);
    }
  }
  if (!a.stats_out.empty()) {
    std::ofstream f(a.stats_out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", a.stats_out.c_str());
      return 1;
    }
    if (a.stats_format == "csv") {
      all_stats.export_csv(f);
    } else {
      all_stats.export_json(f);
    }
  }
  if (!a.bench_out.empty()) {
    std::ofstream f(a.bench_out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", a.bench_out.c_str());
      return 1;
    }
    f << "{\n  \"schema\": \"rtrsim-chaos-bench-v1\",\n  \"seed\": "
      << a.fault_seed << ",\n  \"smoke\": " << (a.smoke ? "true" : "false")
      << ",\n  \"scenarios\": [\n"
      << bench_rows << "\n  ]\n}\n";
    if (!f) return 1;
  }
  return all_ok ? 0 : 1;
}

template <typename Platform>
int resources() {
  Platform p;
  report::Table t{"Resource usage", {"Module", "Slices", "BRAMs"}};
  for (const auto& row : p.resource_table()) {
    t.row({row.module, report::fmt_int(row.res.slices),
           report::fmt_int(row.res.bram_blocks)});
  }
  t.print();
  std::printf("%s", p.topology().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) return usage();

  if (a.command == "topology") {
    if (a.dual) {
      std::printf("%s", Platform64Dual{}.topology().c_str());
    } else if (a.system == 32) {
      std::printf("%s", Platform32{}.topology().c_str());
    } else {
      std::printf("%s", Platform64{}.topology().c_str());
    }
    return 0;
  }
  if (a.command == "resources") {
    return a.system == 32 ? resources<Platform32>() : resources<Platform64>();
  }
  if (a.command == "reconfig") {
    trace::Tracer tracer;
    tracer.enable(!a.trace_out.empty());
    PlatformOptions opts;
    opts.tracer = &tracer;
    if (!build_fault_plan(a, &opts.fault_plan)) return 2;
    if (a.system == 32) {
      Platform32 p{opts};
      apply_log_level(p.sim(), a);
      const auto s = p.load_module(behavior_of(a.task));
      std::printf("%s: %s (%lld words)\n", a.task.c_str(),
                  s.ok ? s.duration().to_string().c_str() : s.error.c_str(),
                  static_cast<long long>(s.stream_words));
      if (!a.fault_specs.empty()) print_fault_summary(p.faults());
      const int dump_rc = dump_observability(p.sim(), tracer, a);
      return s.ok ? dump_rc : 1;
    }
    Platform64 p{opts};
    apply_log_level(p.sim(), a);
    const auto s = a.dma ? p.load_module_dma(behavior_of(a.task))
                         : p.load_module(behavior_of(a.task));
    std::printf("%s%s: %s (%lld words)\n", a.task.c_str(),
                a.dma ? " [dma]" : "",
                s.ok ? s.duration().to_string().c_str() : s.error.c_str(),
                static_cast<long long>(s.stream_words));
    if (!a.fault_specs.empty()) print_fault_summary(p.faults());
    const int dump_rc = dump_observability(p.sim(), tracer, a);
    return s.ok ? dump_rc : 1;
  }
  if (a.command == "run") {
    return a.system == 32 ? run_task<Platform32>(a) : run_task<Platform64>(a);
  }
  if (a.command == "sweep") {
    return sweep(a);
  }
  if (a.command == "faults") {
    return faults_cmd(a);
  }
  if (a.command == "serve") {
    return serve_cmd(a);
  }
  if (a.command == "fleet") {
    return fleet_cmd(a);
  }
  if (a.command == "chaos") {
    return chaos_cmd(a);
  }
  std::fprintf(stderr, "rtrsim_cli: unknown command '%s'\n",
               a.command.c_str());
  return usage();
}
