// Quickstart: assemble the 32-bit system, load a module into the dynamic
// area at run time, and talk to it through the dock.
//
//   $ ./quickstart
//
// Walks through the whole public API: platform construction (figure 3
// topology), timed reconfiguration through the HWICAP, and programmed I/O
// against the loaded circuit.
#include <cstdio>

#include "rtr/platform.hpp"

int main() {
  using namespace rtr;

  // 1. The platform owns everything: fabric model, buses, memories, CPU,
  //    dock, ICAP, and the BitLinker for the dynamic region.
  Platform32 p;
  std::printf("%s\n", p.topology().c_str());

  // 2. Nothing is configured yet: the dock answers with a poison value.
  std::printf("dock before load : 0x%08X (unbound)\n",
              p.cpu().load32(Platform32::dock_data()));

  // 3. Load the loopback test module. This links a complete partial
  //    configuration, stages it in external memory, and drives it through
  //    the HWICAP with the CPU -- all in simulated time.
  const ReconfigStats s = p.load_module(hw::kLoopback);
  if (!s.ok) {
    std::printf("load failed: %s\n", s.error.c_str());
    return 1;
  }
  std::printf("loaded '%s' in %s (%lld bitstream words, %lld KB of frames)\n",
              p.active_module()->name().c_str(),
              s.duration().to_string().c_str(),
              static_cast<long long>(s.stream_words),
              static_cast<long long>(s.config_bytes / 1024));

  // 4. Programmed I/O: one 32-bit value out, one back.
  p.cpu().store32(Platform32::dock_data(), 0xC0FFEE);
  std::printf("dock after write : 0x%08X\n",
              p.cpu().load32(Platform32::dock_data()));

  // 5. Simulated time so far, and a few statistics.
  std::printf("simulated time   : %s\n", p.cpu().now().to_string().c_str());
  std::printf("OPB transactions : %lld\n",
              static_cast<long long>(
                  p.sim().stats().counter("OPB.transactions").value()));
  std::printf("frames written   : %lld\n",
              static_cast<long long>(p.icap_ctl().frames_written()));
  return 0;
}
