// Two separate dynamic areas (the extension platform): a hashing service
// and an image service resident simultaneously, no swap reconfigurations.
#include <cstdio>

#include "apps/drivers.hpp"
#include "apps/golden.hpp"
#include "apps/memio.hpp"
#include "rtr/platform_dual.hpp"
#include "sim/random.hpp"

int main() {
  using namespace rtr;
  Platform64Dual p;
  std::printf("%s\n", p.topology().c_str());

  const auto s0 = p.load_module(0, hw::kSha1);
  const auto s1 = p.load_module(1, hw::kBrightness);
  if (!s0.ok || !s1.ok) {
    std::printf("load failed: %s%s\n", s0.error.c_str(), s1.error.c_str());
    return 1;
  }
  std::printf("region 0: %s loaded in %s\n", p.active_module(0)->name().c_str(),
              s0.duration().to_string().c_str());
  std::printf("region 1: %s loaded in %s\n\n",
              p.active_module(1)->name().c_str(),
              s1.duration().to_string().c_str());

  // Interleave work for both services without ever reconfiguring.
  sim::Rng rng{12};
  const bus::Addr msg_at = Platform64Dual::kDdrRange.base + 0x10000;
  const bus::Addr img_at = Platform64Dual::kDdrRange.base + 0x20000;
  const bus::Addr out_at = Platform64Dual::kDdrRange.base + 0x30000;
  for (int round = 0; round < 3; ++round) {
    std::vector<std::uint8_t> msg(512 + rng.below(512));
    for (auto& b : msg) b = rng.next_u8();
    apps::store_bytes(p.cpu().plb(), msg_at, msg);
    const auto digest = apps::hw_sha1_pio(
        p.kernel(), Platform64Dual::dock_data(0), msg_at,
        static_cast<std::uint32_t>(msg.size()));
    const bool sha_ok = digest == apps::sha1(msg);

    apps::GrayImage img = apps::GrayImage::make(64, 8);
    for (auto& px : img.pixels) px = rng.next_u8();
    apps::store_bytes(p.cpu().plb(), img_at, img.pixels);
    apps::hw_brightness_pio(p.kernel(), Platform64Dual::dock_data(1), img_at,
                            out_at, static_cast<int>(img.size()), 20);
    const bool img_ok = apps::fetch_bytes(p.cpu().plb(), out_at, img.size()) ==
                        apps::brightness(img, 20).pixels;

    std::printf("round %d: sha1(%zu bytes) %08X.. %s | brightness %s\n", round,
                msg.size(), digest[0], sha_ok ? "ok" : "WRONG",
                img_ok ? "ok" : "WRONG");
    if (!sha_ok || !img_ok) return 1;
  }
  std::printf("\nboth services stayed resident; total simulated time %s\n",
              p.kernel().now().to_string().c_str());
  return 0;
}
