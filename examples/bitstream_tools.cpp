// BitLinker tooling demo (sections 2.2 and figure 2): assemble components
// into a complete partial configuration, inspect the packet stream, compare
// against a differential configuration, and show the bus-macro contract that
// makes component concatenation possible.
#include <cstdio>

#include "bitlinker/bitlinker.hpp"
#include "bitstream/packet.hpp"
#include "bitstream/bitfile.hpp"
#include "bitstream/partial_config.hpp"
#include "busmacro/bus_macro.hpp"
#include "fabric/device.hpp"
#include "fabric/dynamic_region.hpp"
#include "hw/library.hpp"

int main() {
  using namespace rtr;
  const fabric::DynamicRegion region = fabric::DynamicRegion::xc2vp7_region();
  const fabric::ConfigMemory baseline{region.device()};
  const auto dock_if = busmacro::ConnectionInterface::for_width(32);
  const bitlinker::BitLinker linker{region, dock_if, baseline};

  // --- the bus-macro contract (figure 2) --------------------------------
  std::printf("dynamic region '%s' on %s: %dx%d CLBs at (%d,%d), %d BRAMs\n\n",
              region.name().c_str(), region.device().name().c_str(),
              region.rect().cols, region.rect().rows, region.rect().row0,
              region.rect().col0, region.bram_blocks());
  std::printf("dock connection interface (fixed LUT-based bus macros):\n");
  for (const auto* m :
       {&dock_if.write_channel, &dock_if.read_channel, &dock_if.write_strobe}) {
    std::printf("  %-12s %2d bits  anchor (%d,%d)  %s  %d LUTs\n",
                m->name().c_str(), m->width(), m->anchor().row,
                m->anchor().col,
                m->direction() == busmacro::MacroDirection::kOutput
                    ? "dock->module"
                    : "module->dock",
                m->resources().luts);
  }

  // --- assemble a module -------------------------------------------------
  const auto comp = hw::component_for(hw::kFade, 32);
  const auto linked = linker.link_single(comp);
  if (!linked.ok()) {
    std::printf("link failed: %s\n", linked.errors.front().c_str());
    return 1;
  }
  std::printf("\nlinked '%s' (%dx%d CLBs, %d slices of logic): %d frames, "
              "%lld KB payload, complete for the region: %s\n",
              comp.name.c_str(), comp.rows, comp.cols, comp.logic.slices,
              linked.stats.frames,
              static_cast<long long>(linked.stats.payload_bytes / 1024),
              linked.config->is_complete_for(region) ? "yes" : "no");

  // --- the packet stream --------------------------------------------------
  const auto words = bitstream::serialize(*linked.config);
  std::printf("\nserialised bitstream: %zu words; first packets:\n",
              words.size());
  int shown = 0;
  for (std::size_t i = 0; i < words.size() && shown < 8; ++i) {
    const auto h = bitstream::decode_header(words[i]);
    if (words[i] == bitstream::kDummyWord) {
      std::printf("  %04zu: DUMMY\n", i);
      ++shown;
    } else if (words[i] == bitstream::kSyncWord) {
      std::printf("  %04zu: SYNC\n", i);
      ++shown;
    } else if (h.type == bitstream::PacketHeader::Type::kType1) {
      static const char* regs[] = {"CRC", "FAR", "FDRI", "?", "CMD"};
      const auto r = static_cast<std::uint32_t>(h.reg);
      std::printf("  %04zu: type-1 write %-4s count=%u\n", i,
                  r <= 4 ? regs[r] : "IDCODE", h.word_count);
      i += h.word_count;
      ++shown;
    } else if (h.type == bitstream::PacketHeader::Type::kType2) {
      std::printf("  %04zu: type-2 payload count=%u (frame data)\n", i,
                  h.word_count);
      i += h.word_count;
      ++shown;
    }
  }

  // --- .bit container ------------------------------------------------------
  {
    bitstream::BitFile f;
    f.design = comp.name + ".ncd;UserID=0xFFFFFFFF";
    f.part = bitstream::part_string(region.device().name());
    f.date = "2026/07/05";
    f.time = "12:00:00";
    f.words = words;
    const auto bytes = bitstream::write_bitfile(f);
    const auto back = bitstream::parse_bitfile(bytes);
    std::printf("\n.bit container: %zu bytes; design '%s', part '%s', "
                "%zu payload words (round-trip %s)\n",
                bytes.size(), back.design.c_str(), back.part.c_str(),
                back.words.size(), back.words == words ? "ok" : "FAILED");
  }

  // --- differential vs complete -------------------------------------------
  fabric::ConfigMemory holding{region.device()};
  linked.config->apply_to(holding);
  const auto other = hw::component_for(hw::kBrightness, 32);
  bitlinker::LinkJob job;
  job.parts.push_back({&other, {}});
  job.behavior_id = other.behavior_id;
  const auto diff = linker.link_differential(job, holding);
  const auto full = linker.link(job);
  std::printf("\nswapping to '%s': complete config %lld KB, differential "
              "(assuming '%s' loaded) %lld KB -- smaller, but unsafe from "
              "any other state (section 2.2).\n",
              other.name.c_str(),
              static_cast<long long>(full.stats.payload_bytes / 1024),
              comp.name.c_str(),
              static_cast<long long>(diff.stats.payload_bytes / 1024));
  return 0;
}
