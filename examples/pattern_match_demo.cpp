// Pattern matching demo (the paper's first application, section 3.2): find
// an 8x8 pattern in a bilevel image, software vs the dynamic-area pipeline.
#include <cstdio>

#include "apps/drivers.hpp"
#include "apps/memio.hpp"
#include "apps/sw_kernels.hpp"
#include "rtr/platform.hpp"
#include "sim/random.hpp"

int main() {
  using namespace rtr;
  const int w = 128, h = 96;

  // Build a noisy image with an "X" pattern hidden at (41, 77).
  apps::Pattern8x8 pat = {0x81, 0x42, 0x24, 0x18, 0x18, 0x24, 0x42, 0x81};
  apps::BinaryImage img = apps::BinaryImage::make(w, h);
  sim::Rng rng{2024};
  for (auto& word : img.words) word = rng.next_u32() & rng.next_u32();
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      img.set(41 + r, 77 + c, (pat[static_cast<std::size_t>(r)] >> c) & 1);
    }
  }
  const auto img_bytes = apps::to_bytes(img);
  std::vector<std::uint8_t> pat_bytes(64);
  for (int i = 0; i < 64; ++i) {
    pat_bytes[static_cast<std::size_t>(i)] =
        (pat[static_cast<std::size_t>(i / 8)] >> (i % 8)) & 1;
  }

  const bus::Addr img_at = Platform32::kSramRange.base + 0x10000;
  const bus::Addr pat_at = Platform32::kSramRange.base + 0x90000;

  // Software only.
  Platform32 sw;
  apps::store_bytes(sw.cpu().plb(), img_at, img_bytes);
  apps::store_bytes(sw.cpu().plb(), pat_at, pat_bytes);
  const auto t0 = sw.kernel().now();
  const auto sw_res = apps::sw_pattern_match(sw.kernel(), img_at, w, h, pat_at);
  const auto sw_time = sw.kernel().now() - t0;

  // Hardware/software: load the matching pipeline, then stream the image.
  Platform32 hw;
  const auto load = hw.load_module(hw::kPatternMatcher);
  if (!load.ok) {
    std::printf("load failed: %s\n", load.error.c_str());
    return 1;
  }
  apps::store_bytes(hw.cpu().plb(), img_at, img_bytes);
  apps::store_bytes(hw.cpu().plb(), pat_at, pat_bytes);
  const auto t1 = hw.kernel().now();
  const auto hw_res = apps::hw_pattern_match_pio(
      hw.kernel(), Platform32::dock_data(), img_at, w, h, pat_at);
  const auto hw_time = hw.kernel().now() - t1;

  std::printf("image %dx%d, pattern hidden at (41,77)\n", w, h);
  std::printf("software : found %d/64 at (%d,%d) in %s\n", sw_res.best_count,
              sw_res.best_row, sw_res.best_col, sw_time.to_string().c_str());
  std::printf("hardware : found %d/64 at (%d,%d) in %s"
              " (+ %s one-time reconfiguration)\n",
              hw_res.best_count, hw_res.best_row, hw_res.best_col,
              hw_time.to_string().c_str(), load.duration().to_string().c_str());
  std::printf("speedup  : %.1fx\n", static_cast<double>(sw_time.ps()) /
                                        static_cast<double>(hw_time.ps()));
  return sw_res.best_row == 41 && hw_res.best_col == 77 ? 0 : 1;
}
