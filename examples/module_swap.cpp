// Time-sharing the dynamic area (the paper's core motivation: "time-share
// the available hardware to support multiple and mutually exclusive
// tasks"): alternate between a hashing module and an image module on the
// 32-bit system, comparing reconfiguration cost against task time.
//
// Pass a file name to also record the whole run as a Chrome/Perfetto trace
// (one reconfiguration span per swap, ICAP frame spans, bus transactions):
//   module_swap trace.json
#include <cstdio>
#include <fstream>

#include "apps/drivers.hpp"
#include "apps/golden.hpp"
#include "apps/memio.hpp"
#include "rtr/platform.hpp"
#include "sim/random.hpp"
#include "trace/tracer.hpp"

int main(int argc, char** argv) {
  using namespace rtr;
  trace::Tracer tracer;
  tracer.enable(argc > 1);
  PlatformOptions opts;
  opts.tracer = &tracer;
  Platform32 p{opts};

  const bus::Addr key_at = Platform32::kSramRange.base + 0x10000;
  const bus::Addr img_at = Platform32::kSramRange.base + 0x90000;
  const bus::Addr out_at = Platform32::kSramRange.base + 0x110000;

  sim::Rng rng{5};
  std::vector<std::uint8_t> key(2048);
  for (auto& b : key) b = rng.next_u8();
  apps::GrayImage img = apps::GrayImage::make(128, 64);
  for (auto& px : img.pixels) px = rng.next_u8();
  apps::store_bytes(p.cpu().plb(), key_at, key);
  apps::store_bytes(p.cpu().plb(), img_at, img.pixels);

  std::printf("alternating hash and brightness tasks on one dynamic area\n\n");
  std::printf("%-6s %-12s %16s %16s\n", "round", "module", "reconfig",
              "task time");

  sim::SimTime reconfig_total, task_total;
  for (int round = 0; round < 3; ++round) {
    // Hashing phase.
    ReconfigStats s = p.load_module(hw::kJenkinsHash);
    if (!s.ok) {
      std::printf("load failed: %s\n", s.error.c_str());
      return 1;
    }
    sim::SimTime t0 = p.kernel().now();
    const std::uint32_t hash = apps::hw_jenkins_pio(
        p.kernel(), Platform32::dock_data(), key_at,
        static_cast<std::uint32_t>(key.size()));
    sim::SimTime task = p.kernel().now() - t0;
    if (hash != apps::jenkins_hash(key)) return 1;
    std::printf("%-6d %-12s %16s %16s\n", round, "jenkins",
                s.duration().to_string().c_str(), task.to_string().c_str());
    reconfig_total += s.duration();
    task_total += task;

    // Image phase: the same silicon now brightens pixels.
    s = p.load_module(hw::kBrightness);
    if (!s.ok) {
      std::printf("load failed: %s\n", s.error.c_str());
      return 1;
    }
    t0 = p.kernel().now();
    apps::hw_brightness_pio(p.kernel(), Platform32::dock_data(), img_at,
                            out_at, static_cast<int>(img.size()), 30);
    task = p.kernel().now() - t0;
    if (apps::fetch_bytes(p.cpu().plb(), out_at, img.size()) !=
        apps::brightness(img, 30).pixels) {
      return 1;
    }
    std::printf("%-6d %-12s %16s %16s\n", round, "brightness",
                s.duration().to_string().c_str(), task.to_string().c_str());
    reconfig_total += s.duration();
    task_total += task;
  }

  std::printf("\nreconfiguration total %s vs task total %s -- worthwhile when "
              "each configuration is reused long enough (amortisation is the "
              "designer's trade-off).\n",
              reconfig_total.to_string().c_str(),
              task_total.to_string().c_str());

  if (argc > 1) {
    std::ofstream f(argv[1]);
    tracer.export_chrome(f);
    std::printf("trace written to %s (open in https://ui.perfetto.dev)\n",
                argv[1]);
  }
  return 0;
}
