// Fade-in/fade-out on the 64-bit system with DMA (sections 3.2/4.2): "the
// fade-in-fade-out effect is obtained by processing the source images
// successively for different values of f". One reconfiguration, then the
// fade module is reused for every frame of the effect.
#include <cstdio>

#include "apps/drivers.hpp"
#include "apps/golden.hpp"
#include "apps/memio.hpp"
#include "rtr/platform.hpp"
#include "sim/random.hpp"

int main() {
  using namespace rtr;
  const int w = 320, h = 240;
  const int n = w * h;

  sim::Rng rng{7};
  apps::GrayImage a = apps::GrayImage::make(w, h);
  apps::GrayImage b = apps::GrayImage::make(w, h);
  for (auto& p : a.pixels) p = rng.next_u8();
  for (auto& p : b.pixels) p = rng.next_u8();

  Platform64 p;
  const bus::Addr at = Platform64::kDdrRange.base + 0x0100'0000;
  const bus::Addr bt = Platform64::kDdrRange.base + 0x0200'0000;
  const bus::Addr staging = Platform64::kDdrRange.base + 0x0300'0000;
  const bus::Addr out = Platform64::kDdrRange.base + 0x0400'0000;
  apps::store_bytes(p.cpu().plb(), at, a.pixels);
  apps::store_bytes(p.cpu().plb(), bt, b.pixels);

  const auto load = p.load_module(hw::kFade);
  if (!load.ok) {
    std::printf("load failed: %s\n", load.error.c_str());
    return 1;
  }
  std::printf("fade module loaded in %s; %dx%d frames, 64-bit DMA with the "
              "%d-deep output FIFO\n\n",
              load.duration().to_string().c_str(), w, h,
              p.dock().fifo_depth());

  std::printf("%8s %14s %14s %10s\n", "f", "data prep", "frame total",
              "verified");
  sim::SimTime total;
  for (int f = 0; f <= 256; f += 32) {
    const auto stats = apps::hw_fade_dma(p, at, bt, staging, out, n, f);
    const bool ok = apps::fetch_bytes(p.cpu().plb(), out, a.pixels.size()) ==
                    apps::fade(a, b, f).pixels;
    std::printf("%8d %14s %14s %10s\n", f,
                stats.data_preparation.to_string().c_str(),
                stats.total.to_string().c_str(), ok ? "yes" : "NO");
    if (!ok) return 1;
    total += stats.total;
  }
  std::printf("\n9-frame effect in %s of simulated time "
              "(one reconfiguration, many frames).\n",
              total.to_string().c_str());
  return 0;
}
